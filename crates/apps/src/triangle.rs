//! Triangle Counting (TC) on a sampled subgraph (App. D, Algorithm 3).
//!
//! A 10 % vertex sample is selected; for every edge `u -> v` between
//! selected vertices, `u`'s (selected) neighbor list travels to `v`, which
//! intersects it with its own neighbor list (`checkOverlapping`). We count
//! *directed closed wedges*: triples with edges `u -> v`, `u -> w`, `v -> w`
//! — an exactly-defined quantity every implementation (propagation,
//! MapReduce, serial) reproduces bit-for-bit. `combine` is not associative
//! (each source's list must be intersected separately), so local
//! combination does not apply — matching the paper's modest TC gains.

use crate::ExactOutput;
use surfer_cluster::ExecReport;
use surfer_core::{Propagation, PropagationEngine, SpillCodec, SurferApp, SurferResult};
use surfer_graph::properties::sorted_intersection_size;
use surfer_graph::subgraph::sample_vertices;
use surfer_graph::{CsrGraph, VertexId};
use surfer_mapreduce::{Emitter, MapReduceEngine, PartitionMapper, Reducer};
use surfer_partition::PartitionedGraph;

/// Triangle-count result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TriangleCount {
    /// Number of directed closed wedges among selected vertices.
    pub triangles: u64,
}

impl ExactOutput for TriangleCount {
    fn approx_eq(&self, other: &Self, _eps: f64) -> bool {
        self == other
    }
}

/// The TC application.
#[derive(Debug, Clone, Copy)]
pub struct TriangleCounting {
    /// Vertex selection ratio (paper: 10 %).
    pub ratio: f64,
    /// Selection seed.
    pub seed: u64,
}

impl TriangleCounting {
    /// TC with the paper's 10 % sample.
    pub fn new(seed: u64) -> Self {
        TriangleCounting { ratio: 0.1, seed }
    }

    /// The selected-vertex indicator.
    fn selection(&self, g: &CsrGraph) -> Vec<bool> {
        let mut sel = vec![false; g.num_vertices() as usize];
        for v in sample_vertices(g, self.ratio, self.seed) {
            sel[v.index()] = true;
        }
        sel
    }

    /// Selected out-neighbors of `v`, sorted.
    fn selected_neighbors(g: &CsrGraph, sel: &[bool], v: VertexId) -> Vec<VertexId> {
        g.neighbors(v).iter().copied().filter(|t| sel[t.index()]).collect()
    }

    /// Serial reference: sum over selected edges of |N(u) ∩ N(v)|.
    pub fn reference(&self, g: &CsrGraph) -> TriangleCount {
        let sel = self.selection(g);
        let mut triangles = 0u64;
        for u in g.vertices() {
            if !sel[u.index()] {
                continue;
            }
            let nu = Self::selected_neighbors(g, &sel, u);
            for &v in &nu {
                let nv = Self::selected_neighbors(g, &sel, v);
                triangles += sorted_intersection_size(&nu, &nv);
            }
        }
        TriangleCount { triangles }
    }
}

// --------------------------------------------------------------- propagation

/// TC as propagation (paper Algorithm 3).
#[derive(Debug)]
pub struct TrianglePropagation {
    /// Selection indicator.
    pub selected: Vec<bool>,
}

impl Propagation for TrianglePropagation {
    /// Closed-wedge count at this vertex.
    type State = u64;
    /// The source's selected-neighbor list.
    type Msg = Vec<u32>;

    fn init(&self, _v: VertexId, _g: &CsrGraph) -> u64 {
        0
    }

    // LOC:BEGIN(tc_propagation)
    fn transfer(&self, from: VertexId, _s: &u64, to: VertexId, g: &CsrGraph) -> Option<Vec<u32>> {
        if !self.selected[from.index()] || !self.selected[to.index()] {
            return None;
        }
        let list: Vec<u32> = g
            .neighbors(from)
            .iter()
            .filter(|t| self.selected[t.index()])
            .map(|t| t.0)
            .collect();
        Some(list)
    }

    fn combine(&self, v: VertexId, _old: &u64, msgs: Vec<Vec<u32>>, g: &CsrGraph) -> u64 {
        let mine: Vec<u32> = g
            .neighbors(v)
            .iter()
            .filter(|t| self.selected[t.index()])
            .map(|t| t.0)
            .collect();
        let mut count = 0u64;
        for list in msgs {
            count += check_overlapping(&mine, &list);
        }
        count
    }
    // LOC:END(tc_propagation)

    fn msg_bytes(&self, m: &Vec<u32>) -> u64 {
        8 + 4 * m.len() as u64
    }

    fn spill_capable(&self) -> bool {
        true
    }

    fn spill_encode(&self, msg: &Vec<u32>, out: &mut Vec<u8>) {
        msg.spill_to(out);
    }

    fn spill_decode(&self, buf: &mut &[u8]) -> Option<Vec<u32>> {
        Vec::<u32>::spill_from(buf)
    }

    fn combine_ops(&self) -> f64 {
        8.0 // a list intersection is pricier than a scalar add
    }
}

/// The paper's `checkOverlapping`: size of the intersection of two sorted
/// id lists.
fn check_overlapping(a: &[u32], b: &[u32]) -> u64 {
    let (mut i, mut j, mut c) = (0, 0, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

// ----------------------------------------------------------------- mapreduce

/// TC map: ship each selected edge's source neighbor list to the target.
#[derive(Debug)]
pub struct TriangleMapper<'a> {
    /// Selection indicator.
    pub selected: &'a [bool],
}

impl PartitionMapper for TriangleMapper<'_> {
    type Key = u32;
    type Value = Vec<u32>;

    // LOC:BEGIN(tc_mapreduce)
    fn map(&self, pg: &PartitionedGraph, pid: u32, out: &mut Emitter<u32, Vec<u32>>) {
        let g = pg.graph();
        for &v in &pg.meta(pid).members {
            if !self.selected[v.index()] {
                continue;
            }
            let list: Vec<u32> = g
                .neighbors(v)
                .iter()
                .filter(|t| self.selected[t.index()])
                .map(|t| t.0)
                .collect();
            for &t in &list {
                out.emit(t, list.clone());
            }
        }
    }
    // LOC:END(tc_mapreduce)

    fn pair_bytes(&self, _k: &u32, list: &Vec<u32>) -> u64 {
        8 + 4 * list.len() as u64 // same record format as the propagation side
    }
}

/// TC reduce: intersect each received list with the vertex's own.
#[derive(Debug)]
pub struct TriangleReducer<'a> {
    /// Selection indicator.
    pub selected: &'a [bool],
    /// The graph (for the receiver's own neighbor list).
    pub graph: &'a CsrGraph,
}

impl Reducer for TriangleReducer<'_> {
    type Key = u32;
    type Value = Vec<u32>;
    type Out = u64;

    // LOC:BEGIN(tc_mapreduce_reduce)
    fn reduce(&self, v: &u32, values: &[Vec<u32>], out: &mut Vec<u64>) {
        let mine: Vec<u32> = self
            .graph
            .neighbors(VertexId(*v))
            .iter()
            .filter(|t| self.selected[t.index()])
            .map(|t| t.0)
            .collect();
        let count: u64 = values.iter().map(|l| check_overlapping(&mine, l)).sum();
        out.push(count);
    }
    // LOC:END(tc_mapreduce_reduce)
}

// ------------------------------------------------------------------ SurferApp

impl SurferApp for TriangleCounting {
    type Output = TriangleCount;

    fn name(&self) -> &'static str {
        "TC"
    }

    fn run_propagation(&self, engine: &PropagationEngine<'_>) -> SurferResult<(TriangleCount, ExecReport)> {
        let g = engine.graph().graph();
        let prog = TrianglePropagation { selected: self.selection(g) };
        let mut state = engine.init_state(&prog);
        let report = engine.run_iteration(&prog, &mut state)?;
        Ok((TriangleCount { triangles: state.iter().sum() }, report))
    }

    fn run_mapreduce(&self, engine: &MapReduceEngine<'_>) -> SurferResult<(TriangleCount, ExecReport)> {
        let g = engine.graph().graph();
        let selected = self.selection(g);
        let run = engine.run(
            &TriangleMapper { selected: &selected },
            &TriangleReducer { selected: &selected, graph: g },
        )?;
        Ok((TriangleCount { triangles: run.outputs.iter().sum() }, run.report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{surfer_fixture, FIXTURE_SEED};
    use surfer_graph::generators::deterministic::complete;

    #[test]
    fn full_selection_on_k4_counts_all_wedges() {
        // K4 directed: every ordered pair is an edge. Closed wedges
        // u->v, u->w, v->w: ordered triples of distinct vertices = 4*3*2 = 24.
        let g = complete(4);
        let app = TriangleCounting { ratio: 1.0, seed: 1 };
        assert_eq!(app.reference(&g).triangles, 24);
    }

    #[test]
    fn propagation_matches_reference() {
        let (g, surfer) = surfer_fixture(4, 4);
        let app = TriangleCounting::new(FIXTURE_SEED);
        let run = surfer.run(&app).unwrap();
        assert_eq!(run.output, app.reference(&g));
        assert!(run.output.triangles > 0, "sample found no triangles; enlarge fixture");
    }

    #[test]
    fn mapreduce_matches_reference() {
        let (g, surfer) = surfer_fixture(4, 4);
        let app = TriangleCounting::new(FIXTURE_SEED);
        let run = surfer.run_mapreduce(&app).unwrap();
        assert_eq!(run.output, app.reference(&g));
    }

    #[test]
    fn empty_selection_counts_nothing() {
        let (_, surfer) = surfer_fixture(2, 2);
        let app = TriangleCounting { ratio: 0.0, seed: 1 };
        let run = surfer.run(&app).unwrap();
        assert_eq!(run.output.triangles, 0);
    }
}
