//! Vertex Degree Distribution (VDD): the vertex-oriented task (App. D).
//!
//! VDD does not match the edge-flow pattern, so the propagation version uses
//! *virtual vertices*: each vertex sends `(degree, 1)` to the virtual vertex
//! whose id equals its degree; the virtual vertices combine the counts.
//! This emulates MapReduce inside Surfer — which is why the paper finds the
//! two primitives tie on VDD (§6.4).

use crate::ExactOutput;
use surfer_cluster::ExecReport;
use surfer_core::{
    PropagationEngine, SurferApp, SurferResult, VectorizedVirtualTask, VirtualVertexTask,
};
use surfer_graph::{CsrGraph, VertexId};
use surfer_mapreduce::{Emitter, MapReduceEngine, PartitionMapper, Reducer};
use surfer_partition::PartitionedGraph;

/// The out-degree histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeHistogram {
    /// Sorted `(degree, count)` pairs.
    pub entries: Vec<(u32, u64)>,
}

impl ExactOutput for DegreeHistogram {
    fn approx_eq(&self, other: &Self, _eps: f64) -> bool {
        self == other
    }
}

/// The VDD application.
#[derive(Debug, Clone, Copy, Default)]
pub struct VertexDegreeDistribution;

impl VertexDegreeDistribution {
    /// Serial reference.
    pub fn reference(&self, g: &CsrGraph) -> DegreeHistogram {
        DegreeHistogram { entries: surfer_graph::properties::degree_histogram(g) }
    }
}

// --------------------------------------------------------------- propagation

/// VDD through virtual vertices.
#[derive(Debug, Clone, Copy)]
pub struct DegreeVirtualTask;

impl VirtualVertexTask for DegreeVirtualTask {
    type Msg = u64;
    type Out = (u32, u64);

    // LOC:BEGIN(vdd_propagation)
    fn transfer(&self, v: VertexId, g: &CsrGraph) -> Option<(u64, u64)> {
        Some((g.out_degree(v) as u64, 1))
    }

    fn combine(&self, vid: u64, msgs: Vec<u64>) -> (u32, u64) {
        (vid as u32, msgs.iter().sum())
    }

    fn associative(&self) -> bool {
        true
    }

    fn merge(&self, a: u64, b: u64) -> u64 {
        a + b
    }
    // LOC:END(vdd_propagation)

    fn msg_bytes(&self, _m: &u64) -> u64 {
        16 // 8-byte virtual id + 8-byte count
    }
}

/// VDD on the dense vectorized virtual lane: virtual ids are out-degrees,
/// so `max_degree + 1` bounds them and the per-partition merge runs over a
/// dense accumulator instead of a `BTreeMap`.
impl VectorizedVirtualTask for DegreeVirtualTask {
    fn virtual_bound(&self, g: &CsrGraph) -> u64 {
        g.vertices().map(|v| g.out_degree(v) as u64).max().unwrap_or(0) + 1
    }
}

// ----------------------------------------------------------------- mapreduce

/// VDD map with in-map combining (one `(degree, count)` pair per distinct
/// degree per partition).
#[derive(Debug, Clone, Copy)]
pub struct DegreeMapper;

impl PartitionMapper for DegreeMapper {
    type Key = u32;
    type Value = u64;

    // LOC:BEGIN(vdd_mapreduce)
    fn map(&self, pg: &PartitionedGraph, pid: u32, out: &mut Emitter<u32, u64>) {
        let g = pg.graph();
        let mut counts = std::collections::BTreeMap::new();
        for &v in &pg.meta(pid).members {
            *counts.entry(g.out_degree(v)).or_insert(0u64) += 1;
        }
        for (d, c) in counts {
            out.emit(d, c);
        }
    }
    // LOC:END(vdd_mapreduce)
}

/// VDD reduce: sum per-partition counts.
#[derive(Debug, Clone, Copy)]
pub struct DegreeReducer;

impl Reducer for DegreeReducer {
    type Key = u32;
    type Value = u64;
    type Out = (u32, u64);

    // LOC:BEGIN(vdd_mapreduce_reduce)
    fn reduce(&self, d: &u32, values: &[u64], out: &mut Vec<(u32, u64)>) {
        out.push((*d, values.iter().sum()));
    }
    // LOC:END(vdd_mapreduce_reduce)
}

// ------------------------------------------------------------------ SurferApp

impl SurferApp for VertexDegreeDistribution {
    type Output = DegreeHistogram;

    fn name(&self) -> &'static str {
        "VDD"
    }

    fn run_propagation(&self, engine: &PropagationEngine<'_>) -> SurferResult<(DegreeHistogram, ExecReport)> {
        let (mut outputs, report) = engine.run_virtual_vectorized(&DegreeVirtualTask)?;
        outputs.sort_unstable();
        Ok((DegreeHistogram { entries: outputs }, report))
    }

    fn run_mapreduce(&self, engine: &MapReduceEngine<'_>) -> SurferResult<(DegreeHistogram, ExecReport)> {
        let run = engine.run(&DegreeMapper, &DegreeReducer)?;
        let mut entries = run.outputs;
        entries.sort_unstable();
        Ok((DegreeHistogram { entries }, run.report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::surfer_fixture;

    #[test]
    fn propagation_matches_reference() {
        let (g, surfer) = surfer_fixture(4, 4);
        let run = surfer.run(&VertexDegreeDistribution).unwrap();
        assert_eq!(run.output, VertexDegreeDistribution.reference(&g));
    }

    #[test]
    fn mapreduce_matches_reference() {
        let (g, surfer) = surfer_fixture(4, 4);
        let run = surfer.run_mapreduce(&VertexDegreeDistribution).unwrap();
        assert_eq!(run.output, VertexDegreeDistribution.reference(&g));
    }

    #[test]
    fn primitives_tie_on_vertex_oriented_work() {
        // §6.4: "Emulating MapReduce in VDD, propagation has a similar
        // performance [to] MapReduce."
        let (_, surfer) = surfer_fixture(4, 4);
        let prop = surfer.run(&VertexDegreeDistribution).unwrap();
        let mr = surfer.run_mapreduce(&VertexDegreeDistribution).unwrap();
        let (a, b) =
            (prop.report.response_time.as_secs_f64(), mr.report.response_time.as_secs_f64());
        assert!((a / b) < 2.0 && (b / a) < 2.0, "VDD should tie: {a} vs {b}");
    }

    #[test]
    fn histogram_counts_every_vertex() {
        let (g, surfer) = surfer_fixture(2, 2);
        let run = surfer.run(&VertexDegreeDistribution).unwrap();
        let total: u64 = run.output.entries.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, g.num_vertices() as u64);
    }
}
