//! Reverse Link Graph (RLG): materialize the transposed graph (App. D).
//!
//! *"The task is to reverse the source vertex and destination vertex for
//! each edge in the graph, and to store the reversed graph as adjacency
//! list."* Transfer ships the reversed edge to its new source; combine
//! assembles each vertex's in-neighbor list.

use crate::ExactOutput;
use surfer_cluster::ExecReport;
use surfer_core::{Propagation, PropagationEngine, SpillCodec, SurferApp, SurferResult};
use surfer_graph::{CsrGraph, GraphBuilder, VertexId};
use surfer_mapreduce::{Emitter, MapReduceEngine, PartitionMapper, Reducer};
use surfer_partition::PartitionedGraph;

/// The reversed graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReversedGraph {
    /// The transposed adjacency structure.
    pub graph: CsrGraph,
}

impl ExactOutput for ReversedGraph {
    fn approx_eq(&self, other: &Self, _eps: f64) -> bool {
        self == other
    }
}

/// The RLG application.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReverseLinkGraph;

impl ReverseLinkGraph {
    /// Serial reference: the CSR transpose.
    pub fn reference(&self, g: &CsrGraph) -> ReversedGraph {
        ReversedGraph { graph: g.transpose() }
    }

    fn assemble(n: u32, lists: Vec<(u32, Vec<u32>)>) -> ReversedGraph {
        let mut b = GraphBuilder::new(n);
        for (v, sources) in lists {
            for s in sources {
                b.add_edge_raw(v, s);
            }
        }
        ReversedGraph { graph: b.build() }
    }
}

// --------------------------------------------------------------- propagation

/// RLG as propagation: each edge `u -> v` delivers `u` to `v`.
#[derive(Debug, Clone, Copy)]
pub struct ReversePropagation;

impl Propagation for ReversePropagation {
    /// Collected in-neighbors.
    type State = Vec<u32>;
    /// A batch of reversed-edge sources (singletons merge under local
    /// combination).
    type Msg = Vec<u32>;

    fn init(&self, _v: VertexId, _g: &CsrGraph) -> Vec<u32> {
        Vec::new()
    }

    // LOC:BEGIN(rlg_propagation)
    fn transfer(&self, from: VertexId, _s: &Vec<u32>, _to: VertexId, _g: &CsrGraph) -> Option<Vec<u32>> {
        Some(vec![from.0])
    }

    fn combine(&self, _v: VertexId, _old: &Vec<u32>, msgs: Vec<Vec<u32>>, _g: &CsrGraph) -> Vec<u32> {
        let mut sources: Vec<u32> = msgs.into_iter().flatten().collect();
        sources.sort_unstable();
        sources
    }

    fn associative(&self) -> bool {
        true
    }

    fn merge(&self, mut a: Vec<u32>, b: Vec<u32>) -> Vec<u32> {
        a.extend(b);
        a
    }
    // LOC:END(rlg_propagation)

    fn msg_bytes(&self, m: &Vec<u32>) -> u64 {
        8 + 4 * m.len() as u64 // destination + length header + ids
    }

    fn spill_capable(&self) -> bool {
        true
    }

    fn spill_encode(&self, msg: &Vec<u32>, out: &mut Vec<u8>) {
        msg.spill_to(out);
    }

    fn spill_decode(&self, buf: &mut &[u8]) -> Option<Vec<u32>> {
        Vec::<u32>::spill_from(buf)
    }

    fn state_bytes(&self) -> u64 {
        16 // amortized adjacency record header + average payload
    }
}

// ----------------------------------------------------------------- mapreduce

/// RLG map: emit `(v, u)` for each edge `u -> v`.
#[derive(Debug, Clone, Copy)]
pub struct ReverseMapper;

impl PartitionMapper for ReverseMapper {
    type Key = u32;
    type Value = u32;

    // LOC:BEGIN(rlg_mapreduce)
    fn map(&self, pg: &PartitionedGraph, pid: u32, out: &mut Emitter<u32, u32>) {
        let g = pg.graph();
        for &v in &pg.meta(pid).members {
            for &t in g.neighbors(v) {
                out.emit(t.0, v.0);
            }
        }
    }
    // LOC:END(rlg_mapreduce)

    fn pair_bytes(&self, _k: &u32, _v: &u32) -> u64 {
        8
    }
}

/// RLG reduce: sort each in-neighbor list.
#[derive(Debug, Clone, Copy)]
pub struct ReverseReducer;

impl Reducer for ReverseReducer {
    type Key = u32;
    type Value = u32;
    type Out = (u32, Vec<u32>);

    // LOC:BEGIN(rlg_mapreduce_reduce)
    fn reduce(&self, v: &u32, values: &[u32], out: &mut Vec<(u32, Vec<u32>)>) {
        let mut sources = values.to_vec();
        sources.sort_unstable();
        out.push((*v, sources));
    }
    // LOC:END(rlg_mapreduce_reduce)
}

// ------------------------------------------------------------------ SurferApp

impl SurferApp for ReverseLinkGraph {
    type Output = ReversedGraph;

    fn name(&self) -> &'static str {
        "RLG"
    }

    fn run_propagation(&self, engine: &PropagationEngine<'_>) -> SurferResult<(ReversedGraph, ExecReport)> {
        let g = engine.graph().graph();
        let prog = ReversePropagation;
        let mut state = engine.init_state(&prog);
        let report = engine.run_iteration(&prog, &mut state)?;
        let lists =
            state.into_iter().enumerate().map(|(v, l)| (v as u32, l)).collect();
        Ok((Self::assemble(g.num_vertices(), lists), report))
    }

    fn run_mapreduce(&self, engine: &MapReduceEngine<'_>) -> SurferResult<(ReversedGraph, ExecReport)> {
        let g = engine.graph().graph();
        let run = engine.run(&ReverseMapper, &ReverseReducer)?;
        Ok((Self::assemble(g.num_vertices(), run.outputs), run.report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::surfer_fixture;

    #[test]
    fn propagation_matches_reference() {
        let (g, surfer) = surfer_fixture(4, 4);
        let run = surfer.run(&ReverseLinkGraph).unwrap();
        assert_eq!(run.output, ReverseLinkGraph.reference(&g));
    }

    #[test]
    fn mapreduce_matches_reference() {
        let (g, surfer) = surfer_fixture(4, 4);
        let run = surfer.run_mapreduce(&ReverseLinkGraph).unwrap();
        assert_eq!(run.output, ReverseLinkGraph.reference(&g));
    }

    #[test]
    fn reversal_preserves_edge_count() {
        let (g, surfer) = surfer_fixture(2, 2);
        let run = surfer.run(&ReverseLinkGraph).unwrap();
        assert_eq!(run.output.graph.num_edges(), g.num_edges());
    }

    #[test]
    fn propagation_network_at_most_mapreduce() {
        let (_, surfer) = surfer_fixture(4, 4);
        let prop = surfer.run(&ReverseLinkGraph).unwrap();
        let mr = surfer.run_mapreduce(&ReverseLinkGraph).unwrap();
        assert!(prop.report.network_bytes < mr.report.network_bytes);
    }
}
