//! Deterministic post-mortem bundles (DESIGN.md §15).
//!
//! When a typed `SurferError` surfaces from the recovery loop, the spill
//! lane or the serving layer, the failure site calls [`record_failure`]
//! with the error's variant name, display form, and the attributed
//! [`TraceCtx`]. That flushes a [`PostmortemBundle`] — the last-K flight
//! journal events, the active span stack, a counter snapshot (when an
//! `ObsSession` is live), the fault context, and per-job lanes — into a
//! thread-local slot the harness retrieves with [`take_last`] and writes
//! out as `POSTMORTEM.json`.
//!
//! The canonical JSON form is **timing-free** and, for the same seed and
//! `FaultPlan`, bit-identical across worker thread counts: events are
//! renumbered relative to the bundle (so ring eviction never leaks), carry
//! no timestamps, and are only ever recorded from coordinating threads.

use crate::journal::{self, EventKind, JournalEvent, TraceCtx};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Version stamp of the bundle schema.
pub const BUNDLE_SCHEMA_VERSION: u32 = 1;

/// How many trailing journal events a bundle keeps.
pub const LAST_K: usize = 64;

/// Everything needed to explain a failure after the fact.
#[derive(Debug, Clone)]
pub struct PostmortemBundle {
    /// `SurferError` variant name (e.g. `"RetriesExhausted"`).
    pub fault_variant: String,
    /// The error's display form.
    pub fault_detail: String,
    /// Job/tenant/attempt/iteration the failure is attributed to.
    pub fault_ctx: TraceCtx,
    /// Names of the spans active on the failing thread, outermost first.
    pub span_stack: Vec<&'static str>,
    /// Last-K journal events, renumbered from 0 within the bundle.
    pub events: Vec<JournalEvent>,
    /// Counter snapshot of the live `ObsSession`, if one was active.
    pub counters: BTreeMap<String, u64>,
}

/// One per-job lane summary derived from the bundle's events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobLane {
    /// Serving-layer job id (0 = ambient work).
    pub job: u64,
    /// Owning tenant of the lane's events.
    pub tenant: u16,
    /// Events in the bundle attributed to this job.
    pub events: usize,
    /// Does the bundle's fault belong to this lane?
    pub failed: bool,
}

impl PostmortemBundle {
    /// Group the bundle's events into per-job lanes, ordered by job id.
    pub fn lanes(&self) -> Vec<JobLane> {
        let mut by_job: BTreeMap<u64, (u16, usize)> = BTreeMap::new();
        for e in &self.events {
            let entry = by_job.entry(e.ctx.job).or_insert((e.ctx.tenant, 0));
            entry.1 += 1;
        }
        // The fault's lane exists even if its events were evicted.
        by_job.entry(self.fault_ctx.job).or_insert((self.fault_ctx.tenant, 0));
        by_job
            .into_iter()
            .map(|(job, (tenant, events))| JobLane {
                job,
                tenant,
                events,
                failed: job == self.fault_ctx.job,
            })
            .collect()
    }

    /// Canonical JSON form: timing-free, deterministically ordered, and
    /// bit-identical across worker thread counts for the same fault.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema_version\": {BUNDLE_SCHEMA_VERSION},\n"));
        out.push_str("  \"fault\": {\n");
        out.push_str(&format!("    \"variant\": \"{}\",\n", crate::esc(&self.fault_variant)));
        out.push_str(&format!("    \"detail\": \"{}\",\n", crate::esc(&self.fault_detail)));
        out.push_str(&format!("    \"ctx\": {}\n", ctx_json(&self.fault_ctx)));
        out.push_str("  },\n");
        out.push_str("  \"span_stack\": [");
        for (i, name) in self.span_stack.iter().enumerate() {
            out.push_str(&format!("\"{}\"{}", crate::esc(name), crate::comma(i, self.span_stack.len())));
        }
        out.push_str("],\n");
        out.push_str("  \"events\": [\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"seq\": {}, \"kind\": \"{}\", \"ctx\": {}, \"data\": {}}}{}\n",
                e.seq,
                e.kind.name(),
                ctx_json(&e.ctx),
                e.kind.data_json(),
                crate::comma(i, self.events.len()),
            ));
        }
        out.push_str("  ],\n");
        let lanes = self.lanes();
        out.push_str("  \"lanes\": [\n");
        for (i, l) in lanes.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"job\": {}, \"tenant\": {}, \"events\": {}, \"failed\": {}}}{}\n",
                l.job,
                l.tenant,
                l.events,
                l.failed,
                crate::comma(i, lanes.len()),
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"counters\": {\n");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {}{}\n",
                crate::esc(k),
                v,
                crate::comma(i, self.counters.len()),
            ));
        }
        out.push_str("  }\n}\n");
        out
    }
}

fn ctx_json(ctx: &TraceCtx) -> String {
    format!(
        "{{\"job\": {}, \"tenant\": {}, \"attempt\": {}, \"iteration\": {}}}",
        ctx.job, ctx.tenant, ctx.attempt, ctx.iteration
    )
}

thread_local! {
    /// The most recent bundle recorded by this thread. Thread-local so
    /// concurrent jobs (and parallel tests) never clobber each other's
    /// forensics.
    static LAST: RefCell<Option<PostmortemBundle>> = const { RefCell::new(None) };
}

/// Flush a post-mortem bundle for a typed failure: records an `error`
/// journal event under `ctx`, snapshots the last-K events, the failing
/// thread's span stack and the live session counters (if any), and stores
/// the bundle in this thread's [`take_last`] slot.
pub fn record_failure(variant: &'static str, detail: &str, ctx: TraceCtx) {
    journal::record_with(ctx, EventKind::Error { variant, detail: detail.to_string() });
    let bundle = build_bundle(variant, detail, ctx);
    LAST.with(|l| *l.borrow_mut() = Some(bundle));
}

fn build_bundle(variant: &str, detail: &str, ctx: TraceCtx) -> PostmortemBundle {
    let mut events = journal::snapshot();
    if events.len() > LAST_K {
        events.drain(..events.len() - LAST_K);
    }
    for (i, e) in events.iter_mut().enumerate() {
        e.seq = i as u64;
    }
    PostmortemBundle {
        fault_variant: variant.to_string(),
        fault_detail: detail.to_string(),
        fault_ctx: ctx,
        span_stack: crate::span_stack(),
        events,
        counters: crate::session_counters_snapshot(),
    }
}

/// Take (and clear) the most recent bundle recorded by this thread.
pub fn take_last() -> Option<PostmortemBundle> {
    LAST.with(|l| l.borrow_mut().take())
}

/// Does this thread's pending bundle (if any) already attribute its fault
/// to `job`? Lets an upper layer — the job manager closing out a failed
/// job — keep the richer bundle the failing engine flushed moments
/// earlier instead of clobbering it with a coarser one.
pub fn last_is_for_job(job: u64) -> bool {
    LAST.with(|l| l.borrow().as_ref().is_some_and(|b| b.fault_ctx.job == job))
}

/// Validate a rendered bundle against the schema: returns the list of
/// problems (empty = valid). Checks required keys and that braces,
/// brackets and quotes balance outside string literals.
pub fn validate(json: &str) -> Vec<String> {
    let mut problems = Vec::new();
    for key in [
        "\"schema_version\"",
        "\"fault\"",
        "\"variant\"",
        "\"detail\"",
        "\"ctx\"",
        "\"job\"",
        "\"tenant\"",
        "\"attempt\"",
        "\"iteration\"",
        "\"span_stack\"",
        "\"events\"",
        "\"lanes\"",
        "\"counters\"",
    ] {
        if !json.contains(key) {
            problems.push(format!("missing required key {key}"));
        }
    }
    if !json.trim_start().starts_with('{') || !json.trim_end().ends_with('}') {
        problems.push("bundle is not a JSON object".to_string());
    }
    let (mut braces, mut brackets) = (0i64, 0i64);
    let mut in_str = false;
    let mut escaped = false;
    for c in json.chars() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => braces += 1,
            '}' => braces -= 1,
            '[' => brackets += 1,
            ']' => brackets -= 1,
            _ => {}
        }
        if braces < 0 || brackets < 0 {
            problems.push("unbalanced closing delimiter".to_string());
            return problems;
        }
    }
    if braces != 0 {
        problems.push(format!("unbalanced braces ({braces:+})"));
    }
    if brackets != 0 {
        problems.push(format!("unbalanced brackets ({brackets:+})"));
    }
    if in_str {
        problems.push("unterminated string literal".to_string());
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::PoisonError;

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        crate::journal::JOURNAL_TEST_GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn sample_failure() -> PostmortemBundle {
        journal::reset();
        let ctx = TraceCtx::for_job(3, 1).with_iteration(2);
        journal::record_with(ctx.with_iteration(0), EventKind::IterationStart { lane: "resident" });
        journal::record_with(ctx.with_iteration(0), EventKind::IterationEnd { messages: 12 });
        journal::record_with(TraceCtx::for_job(4, 2), EventKind::AdmissionAdmit);
        journal::record_with(ctx, EventKind::MachineCrash { machine: 1 });
        record_failure("ClusterLost", "every machine of the cluster has crashed", ctx);
        take_last().expect("bundle recorded")
    }

    #[test]
    fn bundle_renders_valid_schema_and_lanes() {
        let _s = serial();
        let b = sample_failure();
        assert_eq!(b.fault_variant, "ClusterLost");
        assert_eq!(b.fault_ctx.job, 3);
        // The error event itself is journaled too.
        assert_eq!(b.events.last().map(|e| e.kind.name()), Some("error"));
        let lanes = b.lanes();
        assert_eq!(lanes.len(), 2);
        assert!(lanes.iter().any(|l| l.job == 3 && l.failed && l.tenant == 1));
        assert!(lanes.iter().any(|l| l.job == 4 && !l.failed && l.events == 1));
        let json = b.to_json();
        let problems = validate(&json);
        assert!(problems.is_empty(), "schema problems: {problems:?}");
        journal::reset();
    }

    #[test]
    fn events_are_renumbered_relative_to_the_bundle() {
        let _s = serial();
        journal::reset();
        // Overfill the ring so absolute sequence numbers drift, then fail.
        for i in 0..(journal::RING_CAPACITY as u64 + 50) {
            journal::record(EventKind::IterationEnd { messages: i });
        }
        record_failure("RetriesExhausted", "iteration 2 failed after 3 attempts", TraceCtx::default());
        let b = take_last().expect("bundle recorded");
        assert_eq!(b.events.len(), LAST_K);
        let seqs: Vec<u64> = b.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..LAST_K as u64).collect::<Vec<_>>());
        journal::reset();
    }

    #[test]
    fn take_last_is_thread_local_and_clearing() {
        let _s = serial();
        let _ = take_last();
        journal::reset();
        record_failure("UdfPanic", "stage transfer panicked", TraceCtx::default());
        let other = std::thread::spawn(|| take_last().is_none())
            .join()
            .unwrap_or(false);
        assert!(other, "another thread must not see this thread's bundle");
        assert!(take_last().is_some());
        assert!(take_last().is_none(), "take_last clears the slot");
        journal::reset();
    }

    #[test]
    fn validate_flags_broken_documents() {
        assert!(!validate("{}").is_empty(), "missing keys must be flagged");
        let b = PostmortemBundle {
            fault_variant: "X".into(),
            fault_detail: "with \"quotes\" and {braces} inside".into(),
            fault_ctx: TraceCtx::default(),
            span_stack: vec!["ckpt.restore"],
            events: Vec::new(),
            counters: BTreeMap::new(),
        };
        let good = b.to_json();
        assert!(validate(&good).is_empty(), "{:?}", validate(&good));
        let truncated = &good[..good.len() - 3];
        assert!(validate(truncated).iter().any(|p| p.contains("unbalanced")));
    }
}
