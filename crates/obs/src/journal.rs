//! Always-on, bounded black-box flight journal (DESIGN.md §15).
//!
//! Unlike the opt-in [`ObsSession`](crate::ObsSession) heavy recorder, the
//! journal is **always on**: a fixed-capacity ring buffer of structured
//! events stamped with the ambient [`TraceCtx`] (job, tenant, attempt,
//! iteration) so that when a typed error surfaces — possibly with no
//! session active — the last moments of engine activity can still be
//! attributed to the job/tenant/iteration that caused them.
//!
//! Determinism rules:
//!
//! * events carry **no timestamps** — the canonical form of a post-mortem
//!   bundle must be bit-identical across worker thread counts;
//! * events are recorded only from *coordinating* threads (iteration
//!   boundaries, checkpoint/restore, admission decisions), never from
//!   inside the parallel Transfer/Combine workers;
//! * the context stack is thread-local, so concurrent jobs on different
//!   threads never contaminate each other's attribution.
//!
//! The ring is bounded ([`RING_CAPACITY`]) and the per-event cost is one
//! mutex lock plus a `VecDeque` push — the `obs_overhead` bench lane in
//! `BENCH_propagation.json` keeps this under the 2% hot-path budget.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Fixed capacity of the event ring; older events are evicted first.
pub const RING_CAPACITY: usize = 256;

/// Attribution context stamped onto every journal event: which job, owned
/// by which tenant, on which attempt, at which iteration. The default
/// (all-zero) context means "ambient work outside any managed job".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct TraceCtx {
    /// Serving-layer job id (0 outside the serving layer).
    pub job: u64,
    /// Owning tenant (0 outside the serving layer).
    pub tenant: u16,
    /// Retry attempt of the job (0 = first try).
    pub attempt: u32,
    /// Propagation iteration the work belongs to.
    pub iteration: u32,
}

impl TraceCtx {
    /// Context for a serving-layer job.
    pub fn for_job(job: u64, tenant: u16) -> Self {
        TraceCtx { job, tenant, attempt: 0, iteration: 0 }
    }

    /// Same context at a given retry attempt.
    pub fn with_attempt(mut self, attempt: u32) -> Self {
        self.attempt = attempt;
        self
    }

    /// Same context at a given iteration.
    pub fn with_iteration(mut self, iteration: u32) -> Self {
        self.iteration = iteration;
        self
    }
}

/// What happened. Payload fields are the deterministic facts of the event
/// — never durations or wall-clock times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A propagation iteration began on the named lane
    /// (`"resident"`, `"spill"`, `"vectorized"`).
    IterationStart { lane: &'static str },
    /// The iteration finished, having emitted this many messages.
    IterationEnd { messages: u64 },
    /// A checkpoint snapshot was written (all replicas).
    CheckpointWrite { checkpoint: u32, bytes: u64 },
    /// State was restored from this checkpoint after a failure.
    CheckpointRestore { checkpoint: u32 },
    /// A snapshot replica was skipped and the next one tried.
    ReplicaFailover { partition: u32 },
    /// A simulated machine crashed mid-run.
    MachineCrash { machine: u16 },
    /// Spill-lane frame writes of one iteration (edge blocks + mailbox).
    SpillWrite { frames: u64, bytes: u64 },
    /// Spill-lane frame reads of one iteration.
    SpillRead { frames: u64, bytes: u64 },
    /// A panicked UDF iteration is being retried.
    UdfRetry { attempt: u32 },
    /// A faulted spill iteration is being retried.
    SpillRetry,
    /// The serving layer admitted a job.
    AdmissionAdmit,
    /// The serving layer rejected a submission (`"quota"`, `"overloaded"`).
    AdmissionReject { reason: &'static str },
    /// A job finished successfully.
    JobCompleted,
    /// A job finished with the named typed error.
    JobFailed { variant: &'static str },
    /// A typed `SurferError` surfaced; `detail` is its display form.
    Error { variant: &'static str, detail: String },
}

impl EventKind {
    /// Stable snake_case name used in the bundle schema.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::IterationStart { .. } => "iteration_start",
            EventKind::IterationEnd { .. } => "iteration_end",
            EventKind::CheckpointWrite { .. } => "checkpoint_write",
            EventKind::CheckpointRestore { .. } => "checkpoint_restore",
            EventKind::ReplicaFailover { .. } => "replica_failover",
            EventKind::MachineCrash { .. } => "machine_crash",
            EventKind::SpillWrite { .. } => "spill_write",
            EventKind::SpillRead { .. } => "spill_read",
            EventKind::UdfRetry { .. } => "udf_retry",
            EventKind::SpillRetry => "spill_retry",
            EventKind::AdmissionAdmit => "admission_admit",
            EventKind::AdmissionReject { .. } => "admission_reject",
            EventKind::JobCompleted => "job_completed",
            EventKind::JobFailed { .. } => "job_failed",
            EventKind::Error { .. } => "error",
        }
    }

    /// The payload as a canonical JSON object (no timing fields).
    pub fn data_json(&self) -> String {
        match self {
            EventKind::IterationStart { lane } => format!("{{\"lane\": \"{lane}\"}}"),
            EventKind::IterationEnd { messages } => format!("{{\"messages\": {messages}}}"),
            EventKind::CheckpointWrite { checkpoint, bytes } => {
                format!("{{\"checkpoint\": {checkpoint}, \"bytes\": {bytes}}}")
            }
            EventKind::CheckpointRestore { checkpoint } => {
                format!("{{\"checkpoint\": {checkpoint}}}")
            }
            EventKind::ReplicaFailover { partition } => {
                format!("{{\"partition\": {partition}}}")
            }
            EventKind::MachineCrash { machine } => format!("{{\"machine\": {machine}}}"),
            EventKind::SpillWrite { frames, bytes } | EventKind::SpillRead { frames, bytes } => {
                format!("{{\"frames\": {frames}, \"bytes\": {bytes}}}")
            }
            EventKind::UdfRetry { attempt } => format!("{{\"attempt\": {attempt}}}"),
            EventKind::SpillRetry | EventKind::AdmissionAdmit | EventKind::JobCompleted => {
                "{}".to_string()
            }
            EventKind::AdmissionReject { reason } => format!("{{\"reason\": \"{reason}\"}}"),
            EventKind::JobFailed { variant } => format!("{{\"variant\": \"{variant}\"}}"),
            EventKind::Error { variant, detail } => {
                format!("{{\"variant\": \"{variant}\", \"detail\": \"{}\"}}", crate::esc(detail))
            }
        }
    }
}

/// One recorded event: a monotone sequence number, the attribution context
/// at record time, and the event itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEvent {
    /// Monotone per-process sequence number (renumbered in bundles).
    pub seq: u64,
    /// Attribution at record time.
    pub ctx: TraceCtx,
    /// What happened.
    pub kind: EventKind,
}

thread_local! {
    /// The ambient context stack of this thread. Guards push on enter and
    /// pop on drop; [`current_ctx`] reads the top.
    static CTX: RefCell<Vec<TraceCtx>> = const { RefCell::new(Vec::new()) };
}

/// RAII frame of the thread-local context stack; pops on drop.
#[must_use = "the context is popped when the guard drops"]
pub struct CtxGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CTX.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Push `ctx` as this thread's ambient context until the guard drops.
pub fn ctx_enter(ctx: TraceCtx) -> CtxGuard {
    CTX.with(|c| c.borrow_mut().push(ctx));
    CtxGuard { _not_send: std::marker::PhantomData }
}

/// The ambient context of this thread (default when no guard is active).
pub fn current_ctx() -> TraceCtx {
    CTX.with(|c| c.borrow().last().copied()).unwrap_or_default()
}

/// Update the iteration of the innermost active context frame, so a long
/// run can advance its attribution without pushing a frame per iteration.
/// No-op when no frame is active.
pub fn set_iteration(iteration: u32) {
    CTX.with(|c| {
        if let Some(top) = c.borrow_mut().last_mut() {
            top.iteration = iteration;
        }
    });
}

/// The ring itself: a monotone sequence counter plus the bounded deque.
struct Ring {
    seq: u64,
    events: VecDeque<JournalEvent>,
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(Ring { seq: 0, events: VecDeque::new() }))
}

fn lock_ring() -> std::sync::MutexGuard<'static, Ring> {
    ring().lock().unwrap_or_else(PoisonError::into_inner)
}

/// The journal is on by default; [`set_enabled`] exists so the bench can
/// measure the hot path with and without it.
static JOURNAL_ENABLED: AtomicBool = AtomicBool::new(true);

/// Is the journal recording?
pub fn enabled() -> bool {
    JOURNAL_ENABLED.load(Ordering::Relaxed)
}

/// Turn the journal on or off (bench A/B lane; it is on by default).
pub fn set_enabled(on: bool) {
    JOURNAL_ENABLED.store(on, Ordering::Relaxed);
}

/// Record an event under the ambient [`current_ctx`].
pub fn record(kind: EventKind) {
    record_with(current_ctx(), kind);
}

/// Record an event under an explicit context.
pub fn record_with(ctx: TraceCtx, kind: EventKind) {
    if !enabled() {
        return;
    }
    let mut r = lock_ring();
    let seq = r.seq;
    r.seq += 1;
    r.events.push_back(JournalEvent { seq, ctx, kind });
    if r.events.len() > RING_CAPACITY {
        r.events.pop_front();
    }
}

/// Clone out the current ring contents, oldest first.
pub fn snapshot() -> Vec<JournalEvent> {
    lock_ring().events.iter().cloned().collect()
}

/// Number of events currently buffered.
pub fn len() -> usize {
    lock_ring().events.len()
}

/// Clear the ring and reset the sequence counter (tests and deterministic
/// replay runs).
pub fn reset() {
    let mut r = lock_ring();
    r.seq = 0;
    r.events.clear();
}

#[cfg(test)]
pub(crate) static JOURNAL_TEST_GATE: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        JOURNAL_TEST_GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn ring_is_bounded_and_evicts_oldest() {
        let _s = serial();
        reset();
        for i in 0..(RING_CAPACITY as u64 + 10) {
            record(EventKind::IterationEnd { messages: i });
        }
        let evs = snapshot();
        assert_eq!(evs.len(), RING_CAPACITY);
        // The oldest 10 were evicted; seq keeps counting monotonically.
        assert_eq!(evs[0].seq, 10);
        assert_eq!(evs.last().map(|e| e.seq), Some(RING_CAPACITY as u64 + 9));
        reset();
        assert_eq!(len(), 0);
    }

    #[test]
    fn ctx_stack_nests_and_pops() {
        let _s = serial();
        assert_eq!(current_ctx(), TraceCtx::default());
        let outer = TraceCtx::for_job(7, 3);
        let g1 = ctx_enter(outer);
        assert_eq!(current_ctx(), outer);
        {
            let inner = outer.with_attempt(2).with_iteration(5);
            let _g2 = ctx_enter(inner);
            assert_eq!(current_ctx(), inner);
            set_iteration(6);
            assert_eq!(current_ctx().iteration, 6);
        }
        assert_eq!(current_ctx(), outer, "inner frame must pop on drop");
        drop(g1);
        assert_eq!(current_ctx(), TraceCtx::default());
    }

    #[test]
    fn record_stamps_ambient_context() {
        let _s = serial();
        reset();
        let ctx = TraceCtx::for_job(11, 2).with_iteration(4);
        {
            let _g = ctx_enter(ctx);
            record(EventKind::MachineCrash { machine: 1 });
        }
        record_with(TraceCtx::for_job(12, 0), EventKind::JobCompleted);
        let evs = snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].ctx, ctx);
        assert_eq!(evs[0].kind.name(), "machine_crash");
        assert_eq!(evs[1].ctx.job, 12);
        reset();
    }

    #[test]
    fn disabling_drops_events() {
        let _s = serial();
        reset();
        set_enabled(false);
        record(EventKind::JobCompleted);
        assert_eq!(len(), 0);
        set_enabled(true);
        record(EventKind::JobCompleted);
        assert_eq!(len(), 1);
        reset();
    }

    #[test]
    fn data_json_is_balanced_for_every_kind() {
        let kinds = [
            EventKind::IterationStart { lane: "resident" },
            EventKind::IterationEnd { messages: 3 },
            EventKind::CheckpointWrite { checkpoint: 2, bytes: 99 },
            EventKind::CheckpointRestore { checkpoint: 2 },
            EventKind::ReplicaFailover { partition: 1 },
            EventKind::MachineCrash { machine: 0 },
            EventKind::SpillWrite { frames: 4, bytes: 512 },
            EventKind::SpillRead { frames: 4, bytes: 512 },
            EventKind::UdfRetry { attempt: 1 },
            EventKind::SpillRetry,
            EventKind::AdmissionAdmit,
            EventKind::AdmissionReject { reason: "quota" },
            EventKind::JobCompleted,
            EventKind::JobFailed { variant: "RetriesExhausted" },
            EventKind::Error { variant: "ClusterLost", detail: "a \"quoted\" detail".into() },
        ];
        for k in kinds {
            let d = k.data_json();
            assert!(d.starts_with('{') && d.ends_with('}'), "{}: {d}", k.name());
            assert!(!k.name().is_empty());
        }
    }
}
