//! The flight recorder: a session-gated, per-iteration time-series store.
//!
//! The paper's central claim (§4) is that bandwidth-aware partitioning
//! reduces *cross-partition network traffic* and balances it against the
//! machine graph. Aggregate counters cannot show that — two partitionings
//! with identical totals can stress completely different links. The
//! recorder therefore keeps one [`IterationSample`] per engine round
//! (propagation iteration, MapReduce round, virtual-vertex run,
//! checkpoint/restore), each carrying:
//!
//! * per-partition transfer/combine **wall time** (host clock — the only
//!   non-deterministic fields, stripped from the canonical export);
//! * messages and bytes split **local vs cross** partition;
//! * per-partition **mailbox sizes**;
//! * a full **traffic matrix** — `P×P` partition-pair bytes for
//!   propagation, `P×M` partition→reducer-machine bytes for MapReduce —
//!   which [`TrafficMatrix::fold`] collapses through the placement into the
//!   machine-pair matrix the paper's §4 reasons about.
//!
//! Derived analytics live on [`TraceReport`]: merged traffic matrices and
//! straggler detection (per-iteration max/median partition time against a
//! configurable skew threshold).
//!
//! Everything except the `*_ns` timing lanes is recorded per work item and
//! aggregated commutatively, so samples are bit-identical across worker
//! thread counts — the invariant the traffic-matrix proptests pin down.

/// Which engine round produced a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// One `PropagationEngine` iteration (Transfer + Combine).
    Propagation,
    /// One virtual-vertex run (§3.2 MapReduce emulation inside Surfer).
    Virtual,
    /// One MapReduce map + shuffle + reduce round.
    MapReduce,
    /// One checkpoint write round (all partitions, all replicas).
    Checkpoint,
    /// One checkpoint restore round.
    Restore,
}

impl StageKind {
    /// Stable lowercase name used in exports and seq numbering.
    pub fn as_str(self) -> &'static str {
        match self {
            StageKind::Propagation => "propagation",
            StageKind::Virtual => "virtual",
            StageKind::MapReduce => "mapreduce",
            StageKind::Checkpoint => "checkpoint",
            StageKind::Restore => "restore",
        }
    }
}

/// A dense `rows × cols` byte matrix, row-major. Rows are message sources
/// (partitions), columns destinations (partitions or machines). For square
/// partition matrices the diagonal holds partition-local bytes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TrafficMatrix {
    rows: usize,
    cols: usize,
    data: Vec<u64>,
}

impl TrafficMatrix {
    /// An all-zero `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        TrafficMatrix { rows, cols, data: vec![0; rows * cols] }
    }

    /// The `0 × 0` matrix (samples without routed traffic, e.g. restores).
    pub fn empty() -> Self {
        TrafficMatrix::default()
    }

    /// True when the matrix has no cells at all.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of source rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of destination columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Add `bytes` to cell `(src, dst)`.
    pub fn add(&mut self, src: usize, dst: usize, bytes: u64) {
        assert!(src < self.rows && dst < self.cols, "traffic cell ({src},{dst}) out of range");
        self.data[src * self.cols + dst] += bytes;
    }

    /// Cell `(src, dst)`.
    pub fn get(&self, src: usize, dst: usize) -> u64 {
        self.data[src * self.cols + dst]
    }

    /// Bytes sent by source `r` (row sum).
    pub fn row_sum(&self, r: usize) -> u64 {
        self.data[r * self.cols..(r + 1) * self.cols].iter().sum()
    }

    /// Bytes received by destination `c` (column sum).
    pub fn col_sum(&self, c: usize) -> u64 {
        (0..self.rows).map(|r| self.get(r, c)).sum()
    }

    /// Sum of every cell.
    pub fn total(&self) -> u64 {
        self.data.iter().sum()
    }

    /// Sum of the diagonal (square matrices: traffic that stayed local).
    pub fn diagonal_total(&self) -> u64 {
        (0..self.rows.min(self.cols)).map(|i| self.get(i, i)).sum()
    }

    /// Sum of every off-diagonal cell (square matrices: traffic that
    /// crossed).
    pub fn off_diagonal_total(&self) -> u64 {
        self.total() - self.diagonal_total()
    }

    /// Element-wise accumulate `other` into `self`. An empty `self` adopts
    /// `other`'s shape; otherwise the shapes must match.
    pub fn merge(&mut self, other: &TrafficMatrix) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other.clone();
            return;
        }
        assert!(
            self.rows == other.rows && self.cols == other.cols,
            "cannot merge a {}x{} matrix into a {}x{}",
            other.rows,
            other.cols,
            self.rows,
            self.cols
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Collapse rows and columns through group maps: cell `(r, c)` is
    /// accumulated into `(row_groups[r], col_groups[c])`. Folding a `P×P`
    /// partition matrix through the placement on both axes yields the
    /// machine-pair matrix; folding a `P×M` MapReduce matrix uses the
    /// placement on rows and the identity on columns.
    pub fn fold(
        &self,
        row_groups: &[u16],
        col_groups: &[u16],
        rows: usize,
        cols: usize,
    ) -> TrafficMatrix {
        assert_eq!(row_groups.len(), self.rows, "row group map must cover every row");
        assert_eq!(col_groups.len(), self.cols, "col group map must cover every column");
        let mut out = TrafficMatrix::new(rows, cols);
        for (r, &rg) in row_groups.iter().enumerate() {
            for (c, &cg) in col_groups.iter().enumerate() {
                let v = self.get(r, c);
                if v != 0 {
                    out.add(rg as usize, cg as usize, v);
                }
            }
        }
        out
    }

    /// JSON object: `{"rows": R, "cols": C, "data": [[..], ..]}`.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"rows\": {}, \"cols\": {}, \"data\": [", self.rows, self.cols);
        for r in 0..self.rows {
            if r > 0 {
                out.push_str(", ");
            }
            out.push('[');
            for c in 0..self.cols {
                if c > 0 {
                    out.push(',');
                }
                out.push_str(&self.get(r, c).to_string());
            }
            out.push(']');
        }
        out.push_str("]}");
        out
    }
}

/// One engine round as the flight recorder saw it. Every field except the
/// `*_ns` lanes is deterministic (bit-identical across worker thread
/// counts).
#[derive(Debug, Clone, PartialEq)]
pub struct IterationSample {
    /// Which engine produced the round.
    pub kind: StageKind,
    /// Occurrence index among samples of the same kind (assigned by the
    /// recorder in record order on the coordinating thread).
    pub seq: u32,
    /// Per-work-item transfer/map/write wall time, host nanoseconds.
    /// Indexed by partition id for propagation/checkpoint, by partition for
    /// MapReduce map tasks. **Not deterministic** — stripped from the
    /// canonical export.
    pub transfer_ns: Vec<u64>,
    /// Per-work-item combine/reduce wall time (partition for propagation,
    /// reducer machine for MapReduce). Not deterministic either.
    pub combine_ns: Vec<u64>,
    /// Messages whose destination stayed in the source partition.
    pub local_msgs: u64,
    /// Messages that crossed partitions.
    pub cross_msgs: u64,
    /// Bytes that stayed in the source partition.
    pub local_bytes: u64,
    /// Bytes that crossed partitions (for checkpoints: replica bytes
    /// shipped off the home machine).
    pub cross_bytes: u64,
    /// Incoming messages per destination work item (mailbox sizes for
    /// propagation, per-reducer group values for MapReduce).
    pub mailbox: Vec<u64>,
    /// Routed bytes: `P×P` for propagation, `P×M` for MapReduce/virtual,
    /// empty when the round has no routed traffic.
    pub traffic: TrafficMatrix,
}

impl IterationSample {
    /// A zeroed sample of `kind`; callers fill the fields they measured.
    pub fn new(kind: StageKind) -> Self {
        IterationSample {
            kind,
            seq: 0,
            transfer_ns: Vec::new(),
            combine_ns: Vec::new(),
            local_msgs: 0,
            cross_msgs: 0,
            local_bytes: 0,
            cross_bytes: 0,
            mailbox: Vec::new(),
            traffic: TrafficMatrix::empty(),
        }
    }

    /// Wall time of work item `i`: its transfer lane plus its combine lane
    /// (lanes may have different lengths; missing entries count 0).
    pub fn lane_ns(&self, i: usize) -> u64 {
        self.transfer_ns.get(i).copied().unwrap_or(0)
            + self.combine_ns.get(i).copied().unwrap_or(0)
    }

    /// Number of timing lanes (max of the two stage vectors).
    pub fn lanes(&self) -> usize {
        self.transfer_ns.len().max(self.combine_ns.len())
    }
}

/// One iteration whose slowest work item exceeded the skew threshold —
/// the straggler signal the paper's job manager would surface (App. B).
#[derive(Debug, Clone, PartialEq)]
pub struct StragglerReport {
    /// Engine round kind.
    pub kind: StageKind,
    /// Occurrence index of the iteration within its kind.
    pub seq: u32,
    /// Slowest work item's wall time.
    pub max_ns: u64,
    /// Median work-item wall time.
    pub median_ns: u64,
    /// Index (partition / machine) of the slowest work item.
    pub worst: usize,
    /// `max_ns / median_ns`.
    pub skew: f64,
}

/// Scan `samples` for iterations whose max/median work-item time ratio
/// reaches `skew_threshold`. Iterations with fewer than two timed lanes or
/// a zero median are skipped (nothing meaningful to compare).
pub fn detect_stragglers(samples: &[IterationSample], skew_threshold: f64) -> Vec<StragglerReport> {
    let mut out = Vec::new();
    for s in samples {
        let lanes = s.lanes();
        if lanes < 2 {
            continue;
        }
        let mut times: Vec<u64> = (0..lanes).map(|i| s.lane_ns(i)).collect();
        let Some((max_ns, worst)) = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i))
            .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)))
        else {
            continue;
        };
        times.sort_unstable();
        let median_ns = times[lanes / 2];
        if median_ns == 0 {
            continue;
        }
        let skew = max_ns as f64 / median_ns as f64;
        if skew >= skew_threshold {
            out.push(StragglerReport { kind: s.kind, seq: s.seq, max_ns, median_ns, worst, skew });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_sums_and_diagonal() {
        let mut m = TrafficMatrix::new(3, 3);
        m.add(0, 0, 5);
        m.add(0, 1, 7);
        m.add(2, 0, 11);
        m.add(2, 2, 13);
        assert_eq!(m.total(), 36);
        assert_eq!(m.diagonal_total(), 18);
        assert_eq!(m.off_diagonal_total(), 18);
        assert_eq!(m.row_sum(0), 12);
        assert_eq!(m.row_sum(1), 0);
        assert_eq!(m.col_sum(0), 16);
        let row_sums: u64 = (0..3).map(|r| m.row_sum(r)).sum();
        let col_sums: u64 = (0..3).map(|c| m.col_sum(c)).sum();
        assert_eq!(row_sums, col_sums);
    }

    #[test]
    fn matrix_merge_adopts_and_accumulates() {
        let mut acc = TrafficMatrix::empty();
        let mut a = TrafficMatrix::new(2, 2);
        a.add(0, 1, 3);
        acc.merge(&a);
        assert_eq!(acc, a);
        acc.merge(&a);
        assert_eq!(acc.get(0, 1), 6);
        acc.merge(&TrafficMatrix::empty()); // no-op
        assert_eq!(acc.total(), 6);
    }

    #[test]
    fn fold_collapses_through_placement() {
        // 4 partitions on 2 machines: pids {0,1} -> m0, {2,3} -> m1.
        let mut m = TrafficMatrix::new(4, 4);
        m.add(0, 1, 10); // intra-machine (m0 -> m0)
        m.add(0, 2, 20); // cross (m0 -> m1)
        m.add(3, 3, 30); // diagonal stays diagonal
        m.add(2, 1, 40); // cross (m1 -> m0)
        let placement = [0u16, 0, 1, 1];
        let f = m.fold(&placement, &placement, 2, 2);
        assert_eq!(f.get(0, 0), 10);
        assert_eq!(f.get(0, 1), 20);
        assert_eq!(f.get(1, 1), 30);
        assert_eq!(f.get(1, 0), 40);
        assert_eq!(f.total(), m.total(), "folding must conserve bytes");
    }

    #[test]
    fn matrix_json_shape() {
        let mut m = TrafficMatrix::new(2, 3);
        m.add(1, 2, 9);
        let j = m.to_json();
        assert_eq!(j, "{\"rows\": 2, \"cols\": 3, \"data\": [[0,0,0], [0,0,9]]}");
    }

    #[test]
    fn straggler_detection_flags_skewed_iterations() {
        let mut even = IterationSample::new(StageKind::Propagation);
        even.transfer_ns = vec![100, 110, 90, 105];
        let mut skewed = IterationSample::new(StageKind::Propagation);
        skewed.seq = 1;
        skewed.transfer_ns = vec![100, 100, 100, 100];
        skewed.combine_ns = vec![0, 0, 900, 0];
        let found = detect_stragglers(&[even.clone(), skewed.clone()], 3.0);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].seq, 1);
        assert_eq!(found[0].worst, 2);
        assert_eq!(found[0].max_ns, 1000);
        assert!((found[0].skew - 10.0).abs() < 1e-9, "skew {}", found[0].skew);
        // Threshold above the skew: nothing flagged.
        assert!(detect_stragglers(&[skewed], 11.0).is_empty());
        // Degenerate inputs are skipped, not divided by zero.
        let mut zeros = IterationSample::new(StageKind::MapReduce);
        zeros.transfer_ns = vec![0, 0, 5];
        assert!(detect_stragglers(&[zeros], 1.0).is_empty());
        let single = IterationSample::new(StageKind::Checkpoint);
        assert!(detect_stragglers(&[single], 1.0).is_empty());
    }
}
