//! # surfer-obs
//!
//! Zero-dependency observability for the *real* execution path.
//!
//! The paper's job manager "records resource utilization and estimates the
//! execution progress of the job" (App. B). The simulated side of this repo
//! already has that ([`ExecReport`] and the task-trace Gantt); this crate
//! instruments the host-side computation — the multi-threaded
//! Transfer/Combine stages, MapReduce rounds, checkpoint/restore and replica
//! I/O — with two primitives:
//!
//! * **Spans** — RAII guards ([`SpanGuard`]) recording wall-time interval,
//!   thread, parent span and a label (`span!("prop.transfer.part", "p{pid}")`).
//! * **Metrics** — a registry of counters ([`counter_add`]), gauges
//!   ([`gauge_set`]) and power-of-two histograms ([`observe`]).
//!
//! ## Design constraints
//!
//! 1. **Disabled means free.** All instrumentation funnels through a single
//!    relaxed [`AtomicBool`]; with no active session every call is a load +
//!    branch and the `span!` macro never even formats its label. This is
//!    what keeps `reproduce -- bench` overhead under the 2 % budget.
//! 2. **Values are deterministic.** Counter deltas and histogram samples are
//!    recorded per *work item* (partition, machine, checkpoint round) and
//!    aggregated commutatively, so every non-timing value is bit-identical
//!    for any worker-thread count. [`TraceReport::canonical_json`] strips
//!    timing/thread/id fields and sorts spans, producing a byte-identical
//!    document across `threads ∈ {1, 2, max}` — the conformance and
//!    golden-trace suites assert on exactly that.
//! 3. **Sessions serialize.** [`ObsSession::begin`] holds a global gate so
//!    concurrently running tests never interleave their metrics.
//!
//! Worker threads have no implicit span parent (the thread-local parent
//! stack is per thread); fan-out code captures the stage span's id on the
//! coordinating thread and opens children with [`span_under`].
//!
//! [`ExecReport`]: https://docs.rs/surfer-cluster

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

mod export;
pub mod journal;
pub mod postmortem;
mod recorder;

pub use export::{chrome_trace_json, prometheus_text};
pub use journal::TraceCtx;
pub use recorder::{
    detect_stragglers, IterationSample, StageKind, StragglerReport, TrafficMatrix,
};

/// Version stamp of the exported JSON documents; bump on any breaking
/// change to the schema (`reproduce -- profile` fails on drift).
pub const SCHEMA_VERSION: u32 = 1;

/// The `kernel.*` metric namespace: counters emitted by the columnar
/// propagation lane (`surfer-core/src/kernel.rs`). Kept as named constants
/// so the emitter, the baseline pins and the metrics gate cannot drift
/// apart on a typo. All values are per-work-item deterministic (rule 2
/// above) and covered by `OBS_baseline.json`.
pub mod names {
    /// Rounds executed on the vectorized fast path.
    pub const KERNEL_FASTPATH_ROUNDS: &str = "kernel.fastpath_rounds";
    /// Rounds that fell back to the scalar UDF path (lane disabled).
    pub const KERNEL_FALLBACK_ROUNDS: &str = "kernel.fallback_rounds";
    /// Source rows scanned by the gather operator (vertices × rounds).
    pub const KERNEL_GATHER_ROWS: &str = "kernel.gather_rows";
    /// Messages produced by the transfer operator.
    pub const KERNEL_TRANSFER_ROWS: &str = "kernel.transfer_rows";
    /// Mailbox rows folded by the reduce operator.
    pub const KERNEL_REDUCE_ROWS: &str = "kernel.reduce_rows";
    /// Vertices rewritten by the apply operator.
    pub const KERNEL_APPLY_ROWS: &str = "kernel.apply_rows";
    /// Kernel-plan stages executed (4 per fast-path round).
    pub const KERNEL_STAGE_RUNS: &str = "kernel.stage_runs";
    /// Adjacency footprint as raw 4-byte targets (`4 * m`).
    pub const KERNEL_ADJACENCY_RAW_BYTES: &str = "kernel.adjacency_raw_bytes";
    /// Adjacency footprint as the delta/varint `PackedCsr` stream.
    pub const KERNEL_ADJACENCY_PACKED_BYTES: &str = "kernel.adjacency_packed_bytes";
    /// Virtual-vertex rounds on the dense vectorized merge lane.
    pub const KERNEL_VIRTUAL_FASTPATH_ROUNDS: &str = "kernel.virtual_fastpath_rounds";
    /// Virtual-vertex rounds that fell back to the scalar merge.
    pub const KERNEL_VIRTUAL_FALLBACK_ROUNDS: &str = "kernel.virtual_fallback_rounds";
    /// Dense-accumulator slots flushed by the virtual fast path.
    pub const KERNEL_VIRTUAL_ROWS: &str = "kernel.virtual_rows";

    // The `serve.*` namespace: admission control, scheduling and result
    // caching of the multi-tenant serving layer (`crates/serve`). All values
    // derive from simulated time and seeded arrivals, so they are
    // deterministic and baseline-pinnable like the kernel counters.

    /// Jobs submitted (admitted or not, cache hits included).
    pub const SERVE_SUBMITTED: &str = "serve.submitted";
    /// Jobs that passed admission control into the queue.
    pub const SERVE_ADMITTED: &str = "serve.admitted";
    /// Submissions rejected because the global capacity was full.
    pub const SERVE_REJECTED_OVERLOADED: &str = "serve.rejected_overloaded";
    /// Submissions rejected because the tenant hit its quota.
    pub const SERVE_REJECTED_QUOTA: &str = "serve.rejected_quota";
    /// Jobs that finished successfully (cache hits excluded).
    pub const SERVE_COMPLETED: &str = "serve.completed";
    /// Jobs that finished with a typed error.
    pub const SERVE_FAILED: &str = "serve.failed";
    /// Jobs expired by their deadline before finishing.
    pub const SERVE_DEADLINE_EXCEEDED: &str = "serve.deadline_exceeded";
    /// Retry attempts scheduled after retryable job failures.
    pub const SERVE_RETRIES: &str = "serve.retries";
    /// Work slices executed by the fair-share scheduler.
    pub const SERVE_SLICES: &str = "serve.slices";
    /// Submissions answered straight from the result cache.
    pub const SERVE_CACHE_HITS: &str = "serve.cache_hits";
    /// Submissions that missed the result cache.
    pub const SERVE_CACHE_MISSES: &str = "serve.cache_misses";
    /// Cache entries dropped by typed invalidations.
    pub const SERVE_CACHE_INVALIDATED: &str = "serve.cache_invalidated";
    /// Job latency (submit → completion) in simulated microseconds.
    pub const SERVE_LATENCY_US: &str = "serve.latency_us";
    /// Queue depth observed at each admission.
    pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
    /// Per-tenant job latency in simulated microseconds (labeled histogram,
    /// label = tenant id).
    pub const SERVE_TENANT_LATENCY_US: &str = "serve.tenant.latency_us";

    // The `spill.*` namespace: the out-of-core lane (`surfer-core/src/ooc`).
    // Byte and frame totals are functions of the graph, program and budget
    // alone (frame boundaries derive from the budget, never the thread
    // schedule), so they are deterministic and baseline-pinnable.

    /// Bytes written to spill files (edge blocks + mailbox segments,
    /// framing included).
    pub const SPILL_BYTES_SPILLED: &str = "spill.bytes_spilled";
    /// Bytes read back from spill files (framing included).
    pub const SPILL_BYTES_REREAD: &str = "spill.bytes_reread";
    /// Edge-block frames written (once per engine session).
    pub const SPILL_EDGE_BLOCKS_WRITTEN: &str = "spill.edge_blocks_written";
    /// Edge-block frames streamed by Transfer scans.
    pub const SPILL_EDGE_BLOCKS_READ: &str = "spill.edge_blocks_read";
    /// Mailbox-segment frames written by Transfer.
    pub const SPILL_MAILBOX_FRAMES_WRITTEN: &str = "spill.mailbox_frames_written";
    /// Mailbox-segment frames replayed by Combine.
    pub const SPILL_MAILBOX_FRAMES_READ: &str = "spill.mailbox_frames_read";
    /// Iterations executed on the out-of-core lane.
    pub const SPILL_ITERATIONS: &str = "spill.iterations";
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is a recording session active? The single fast-path check every
/// instrumentation point performs first.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A session-gated wall-clock stopwatch.
///
/// This is the *only* way engine code may touch host time: the `Instant` is
/// captured only while a recording session is active, so engine logic stays
/// clock-free (lint rule D2) and timings remain a pure observability
/// concern. When no session is recording, [`Stopwatch::elapsed_ns`] is 0 and
/// the whole thing costs one relaxed atomic load.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Option<Instant>);

/// Start a stopwatch; inert unless a session is recording.
#[inline]
pub fn stopwatch() -> Stopwatch {
    Stopwatch(enabled().then(Instant::now))
}

impl Stopwatch {
    /// Nanoseconds since [`stopwatch`] was called, or 0 when inert.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.0.map_or(0, |t| t.elapsed().as_nanos() as u64)
    }

    /// True when a session was recording at start.
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Session-unique id (allocation order; not stable across thread
    /// counts — stripped from the canonical export).
    pub id: u64,
    /// Enclosing span, if any.
    pub parent: Option<u64>,
    /// Static name, dot-namespaced by subsystem (`"prop.transfer"`).
    pub name: &'static str,
    /// Instance label (`"p3"`, `"#2"`, `""`).
    pub label: String,
    /// Host thread the span ran on (`"ThreadId(1)"`).
    pub thread: String,
    /// Start offset from session begin, nanoseconds.
    pub start_ns: u64,
    /// End offset from session begin, nanoseconds.
    pub end_ns: u64,
}

/// A power-of-two histogram: values bucketed by bit width, plus exact
/// count/sum/min/max. All fields aggregate commutatively, so histograms are
/// thread-count-invariant when samples are.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// `bit_width(value) -> count` (0 holds the zero samples).
    pub buckets: BTreeMap<u32, u64>,
}

impl Hist {
    fn new() -> Self {
        Hist { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: BTreeMap::new() }
    }

    fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        *self.buckets.entry(64 - v.leading_zeros()).or_insert(0) += 1;
    }
}

#[derive(Default)]
struct State {
    /// `Some` while a session records; `None` drops late writes on the
    /// floor (e.g. a guard outliving its session).
    epoch: Option<Instant>,
    spans: Vec<SpanRec>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Hist>,
    /// Histograms keyed by `(name, integer label)` — the per-tenant series
    /// of the serving layer (`serve.tenant.latency_us` per tenant id).
    labeled_hists: BTreeMap<(&'static str, u64), Hist>,
    /// Occurrence counters for [`span_seq`].
    seq: BTreeMap<&'static str, u64>,
    /// The flight recorder's per-iteration samples, in record order.
    samples: Vec<IterationSample>,
    /// Next `seq` per sample kind.
    sample_seq: BTreeMap<&'static str, u32>,
}

struct Shared {
    next_span: AtomicU64,
    state: Mutex<State>,
}

fn shared() -> &'static Shared {
    static S: OnceLock<Shared> = OnceLock::new();
    S.get_or_init(|| Shared { next_span: AtomicU64::new(1), state: Mutex::new(State::default()) })
}

fn lock_state() -> MutexGuard<'static, State> {
    shared().state.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    /// Open-span stack of the current thread: `(id, name)` pairs, so
    /// implicit parenting reads the id and post-mortem bundles read the
    /// names ([`span_stack`]).
    static PARENTS: std::cell::RefCell<Vec<(u64, &'static str)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Names of this thread's open spans, outermost first — the "active span
/// stack" a post-mortem bundle captures at failure time.
pub(crate) fn span_stack() -> Vec<&'static str> {
    PARENTS.with(|p| p.borrow().iter().map(|&(_, name)| name).collect())
}

/// Counter snapshot of the live session (empty map when no session is
/// recording), cloned for post-mortem bundles.
pub(crate) fn session_counters_snapshot() -> BTreeMap<String, u64> {
    let st = lock_state();
    if st.epoch.is_none() {
        return BTreeMap::new();
    }
    st.counters.iter().map(|(k, v)| ((*k).to_string(), *v)).collect()
}

/// Serializes sessions: only one [`ObsSession`] records at a time.
static SESSION_GATE: Mutex<()> = Mutex::new(());

/// A recording session. Construct with [`ObsSession::begin`], harvest with
/// [`ObsSession::finish`]. Dropping without finishing discards the data.
pub struct ObsSession {
    _gate: Option<MutexGuard<'static, ()>>,
}

/// Typed error returned by [`ObsSession::try_begin`] when another session
/// is already recording: callers get a decision point instead of a silent
/// block on the session gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionBusy;

impl std::fmt::Display for SessionBusy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "an ObsSession is already recording; finish it before beginning another")
    }
}

impl std::error::Error for SessionBusy {}

impl ObsSession {
    /// Start recording. Blocks until any other session finishes; resets the
    /// registry.
    pub fn begin() -> ObsSession {
        let gate = SESSION_GATE.lock().unwrap_or_else(PoisonError::into_inner);
        Self::start(gate)
    }

    /// Start recording if no other session is active; otherwise return the
    /// typed [`SessionBusy`] error instead of blocking.
    pub fn try_begin() -> Result<ObsSession, SessionBusy> {
        let gate = match SESSION_GATE.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return Err(SessionBusy),
        };
        Ok(Self::start(gate))
    }

    fn start(gate: MutexGuard<'static, ()>) -> ObsSession {
        {
            let mut st = lock_state();
            *st = State::default();
            st.epoch = Some(Instant::now());
        }
        shared().next_span.store(1, Ordering::SeqCst);
        ENABLED.store(true, Ordering::SeqCst);
        ObsSession { _gate: Some(gate) }
    }

    /// Stop recording and return everything captured.
    pub fn finish(self) -> TraceReport {
        ENABLED.store(false, Ordering::SeqCst);
        let state = std::mem::take(&mut *lock_state());
        TraceReport {
            spans: state.spans,
            counters: state.counters,
            gauges: state.gauges,
            hists: state.hists,
            labeled_hists: state.labeled_hists,
            iterations: state.samples,
        }
    }
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        // A session abandoned mid-panic must not leave recording enabled.
        ENABLED.store(false, Ordering::SeqCst);
    }
}

/// RAII span. Records its wall-clock interval on drop; a no-op (no lock, no
/// allocation) when no session is active.
#[must_use = "a span measures the scope it is bound to"]
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

struct LiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    label: String,
    start: Instant,
}

impl SpanGuard {
    /// The inert guard (used by the `span!` macro's disabled branch).
    pub fn disabled() -> SpanGuard {
        SpanGuard { live: None }
    }

    /// This span's id, to parent worker-thread child spans on
    /// ([`span_under`]). `None` when disabled.
    pub fn id(&self) -> Option<u64> {
        self.live.as_ref().map(|l| l.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        let end = Instant::now();
        PARENTS.with(|p| {
            let mut p = p.borrow_mut();
            if p.last().map(|&(id, _)| id) == Some(live.id) {
                p.pop();
            }
        });
        let mut st = lock_state();
        let Some(epoch) = st.epoch else { return };
        st.spans.push(SpanRec {
            id: live.id,
            parent: live.parent,
            name: live.name,
            label: live.label,
            thread: format!("{:?}", std::thread::current().id()),
            start_ns: (live.start - epoch).as_nanos() as u64,
            end_ns: (end - epoch).as_nanos() as u64,
        });
    }
}

fn open_span(name: &'static str, label: String, parent: Option<u64>, implicit: bool) -> SpanGuard {
    let id = shared().next_span.fetch_add(1, Ordering::Relaxed);
    let parent = if implicit {
        PARENTS.with(|p| p.borrow().last().map(|&(id, _)| id))
    } else {
        parent
    };
    PARENTS.with(|p| p.borrow_mut().push((id, name)));
    SpanGuard { live: Some(LiveSpan { id, parent, name, label, start: Instant::now() }) }
}

/// Open an unlabeled span under the current thread's innermost open span.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disabled();
    }
    open_span(name, String::new(), None, true)
}

/// Open a span with a lazily built label (only evaluated when recording).
pub fn span_with(name: &'static str, label: impl FnOnce() -> String) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disabled();
    }
    open_span(name, label(), None, true)
}

/// Open a span under an explicit parent id — the fan-out pattern: the
/// coordinating thread captures `stage.id()` and worker closures parent
/// their per-item spans on it (worker threads have empty parent stacks).
pub fn span_under(
    name: &'static str,
    parent: Option<u64>,
    label: impl FnOnce() -> String,
) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disabled();
    }
    open_span(name, label(), parent, false)
}

/// Open a span labeled with its session-wide occurrence index (`"#0"`,
/// `"#1"`, …) — iteration numbering that stays deterministic because it is
/// only ever called from the coordinating thread.
pub fn span_seq(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disabled();
    }
    let k = {
        let mut st = lock_state();
        let k = st.seq.entry(name).or_insert(0);
        let v = *k;
        *k += 1;
        v
    };
    open_span(name, format!("#{k}"), None, true)
}

/// `span!("name")` / `span!("name", "p{}", pid)` — sugar over [`span`] /
/// [`span_with`] that never formats when disabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($fmt:tt)+) => {
        $crate::span_with($name, || format!($($fmt)+))
    };
}

/// Add `delta` to counter `name`.
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut st = lock_state();
    if st.epoch.is_none() {
        return;
    }
    *st.counters.entry(name).or_insert(0) += delta;
}

/// Set gauge `name` (last write wins — call from the coordinating thread
/// only, or the value is not thread-count-deterministic).
pub fn gauge_set(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    let mut st = lock_state();
    if st.epoch.is_none() {
        return;
    }
    st.gauges.insert(name, value);
}

/// Record one histogram sample.
pub fn observe(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    let mut st = lock_state();
    if st.epoch.is_none() {
        return;
    }
    st.hists.entry(name).or_insert_with(Hist::new).record(value);
}

/// Record one sample into the `(name, label)` histogram — the per-tenant
/// variant of [`observe`]. Labels are integers (tenant ids, partition ids),
/// which keeps the registry allocation-free and the export keys sortable.
pub fn observe_labeled(name: &'static str, label: u64, value: u64) {
    if !enabled() {
        return;
    }
    let mut st = lock_state();
    if st.epoch.is_none() {
        return;
    }
    st.labeled_hists.entry((name, label)).or_insert_with(Hist::new).record(value);
}

/// Feed one engine round to the flight recorder. The recorder assigns the
/// sample's `seq` (occurrence index within its [`StageKind`]), so callers
/// leave it 0. Call from the coordinating thread only — like [`span_seq`],
/// the numbering is deterministic because the engines record one sample per
/// round after joining their workers.
pub fn record_sample(mut sample: IterationSample) {
    if !enabled() {
        return;
    }
    let mut st = lock_state();
    if st.epoch.is_none() {
        return;
    }
    let seq = st.sample_seq.entry(sample.kind.as_str()).or_insert(0);
    sample.seq = *seq;
    *seq += 1;
    st.samples.push(sample);
}

/// Per-name aggregate of spans, for the per-stage breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSummary {
    /// Span name.
    pub name: &'static str,
    /// Spans recorded under this name.
    pub count: u64,
    /// Summed wall time, nanoseconds (overlapping spans double-count; this
    /// is per-stage work, not elapsed time).
    pub total_ns: u64,
}

/// Everything one session captured. The trace sink: render it
/// (`surfer_cluster::render_span_gantt`), export it ([`TraceReport::to_json`])
/// or diff it across runs ([`TraceReport::canonical_json`]).
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Completed spans, in completion order.
    pub spans: Vec<SpanRec>,
    /// Counter totals.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<&'static str, u64>,
    /// Histograms.
    pub hists: BTreeMap<&'static str, Hist>,
    /// Labeled histograms keyed `(name, label)`; exported as `name.label`.
    pub labeled_hists: BTreeMap<(&'static str, u64), Hist>,
    /// Flight-recorder samples, one per engine round, in record order.
    pub iterations: Vec<IterationSample>,
}

impl TraceReport {
    /// A counter's total (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The `(name, label)` histogram, if any samples were recorded.
    pub fn labeled_hist(&self, name: &str, label: u64) -> Option<&Hist> {
        self.labeled_hists.iter().find(|((n, l), _)| *n == name && *l == label).map(|(_, h)| h)
    }

    /// Number of spans recorded under `name`.
    pub fn span_count(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// The span with id `id`, if recorded.
    pub fn span_by_id(&self, id: u64) -> Option<&SpanRec> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// Per-name span aggregates, sorted by name.
    pub fn stage_summary(&self) -> Vec<StageSummary> {
        let mut agg: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for s in &self.spans {
            let e = agg.entry(s.name).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.end_ns.saturating_sub(s.start_ns);
        }
        agg.into_iter()
            .map(|(name, (count, total_ns))| StageSummary { name, count, total_ns })
            .collect()
    }

    /// Flight-recorder samples of one engine kind, in seq order.
    pub fn samples_of(&self, kind: StageKind) -> impl Iterator<Item = &IterationSample> {
        self.iterations.iter().filter(move |s| s.kind == kind)
    }

    /// The merged `P×P` propagation traffic matrix: every propagation
    /// sample's matrix summed cell-wise (empty when no propagation ran).
    /// Diagonal = partition-local bytes, off-diagonal = cross bytes, so
    /// `diagonal_total()`/`off_diagonal_total()` equal the
    /// `prop.local_bytes`/`prop.cross_bytes` counters.
    pub fn traffic_matrix(&self) -> TrafficMatrix {
        let mut acc = TrafficMatrix::empty();
        for s in self.samples_of(StageKind::Propagation) {
            acc.merge(&s.traffic);
        }
        acc
    }

    /// The machine-pair traffic matrix: [`TraceReport::traffic_matrix`]
    /// folded through `placement` (partition id → machine id) into an
    /// `machines × machines` matrix — the quantity the paper's
    /// bandwidth-aware partitioning minimizes off-diagonal (§4).
    pub fn machine_matrix(&self, placement: &[u16], machines: usize) -> TrafficMatrix {
        let m = self.traffic_matrix();
        if m.is_empty() {
            return TrafficMatrix::empty();
        }
        m.fold(placement, placement, machines, machines)
    }

    /// Iterations whose slowest work item ran at least `skew_threshold`
    /// times the median ([`detect_stragglers`] over every recorded sample).
    pub fn stragglers(&self, skew_threshold: f64) -> Vec<StragglerReport> {
        detect_stragglers(&self.iterations, skew_threshold)
    }

    /// `"name[label]"` of a span's parent, or `""` for roots. Used as the
    /// timing-free parent key in the canonical export.
    pub fn parent_key(&self, s: &SpanRec) -> String {
        match s.parent.and_then(|p| self.span_by_id(p)) {
            Some(p) => format!("{}[{}]", p.name, p.label),
            None => String::new(),
        }
    }

    /// Full structured JSON: spans with timings and threads, per-stage
    /// aggregates, counters, gauges, histograms. Hand-rolled like the rest
    /// of the harness (the workspace has no serialization deps).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
        out.push_str("  \"stages\": [\n");
        let stages = self.stage_summary();
        for (i, st) in stages.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"count\": {}, \"total_ms\": {:.3}}}{}\n",
                esc(st.name),
                st.count,
                st.total_ns as f64 / 1e6,
                comma(i, stages.len()),
            ));
        }
        out.push_str("  ],\n");
        self.push_metrics_json(&mut out);
        out.push_str(",\n");
        self.push_iterations_json(&mut out, true);
        out.push_str(",\n  \"spans\": [\n");
        for (i, s) in self.spans.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"label\": \"{}\", \"parent\": \"{}\", \
                 \"thread\": \"{}\", \"start_ns\": {}, \"end_ns\": {}}}{}\n",
                esc(s.name),
                esc(&s.label),
                esc(&self.parent_key(s)),
                esc(&s.thread),
                s.start_ns,
                s.end_ns,
                comma(i, self.spans.len()),
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Timing-free canonical JSON: spans deduplicated by
    /// `(name, label, parent)` with occurrence counts and sorted; ids,
    /// threads and times stripped. Byte-identical across thread counts and
    /// across repeat runs with the same seed.
    pub fn canonical_json(&self) -> String {
        let mut agg: BTreeMap<(String, String, String), u64> = BTreeMap::new();
        for s in &self.spans {
            *agg.entry((s.name.to_string(), s.label.clone(), self.parent_key(s)))
                .or_insert(0) += 1;
        }
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
        out.push_str("  \"spans\": [\n");
        for (i, ((name, label, parent), count)) in agg.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"label\": \"{}\", \"parent\": \"{}\", \"count\": {}}}{}\n",
                esc(name),
                esc(label),
                esc(parent),
                count,
                comma(i, agg.len()),
            ));
        }
        out.push_str("  ],\n");
        self.push_metrics_json(&mut out);
        out.push_str(",\n");
        self.push_iterations_json(&mut out, false);
        out.push_str("\n}\n");
        out
    }

    /// The flight-recorder tail shared by both exports: the `iterations`
    /// array (per-lane timing included only when `with_timing` — the
    /// canonical export must stay thread-count-invariant) and the merged
    /// propagation `traffic_matrix`.
    fn push_iterations_json(&self, out: &mut String, with_timing: bool) {
        out.push_str("  \"iterations\": [\n");
        for (i, s) in self.iterations.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"kind\": \"{}\", \"seq\": {}, \"local_msgs\": {}, \"cross_msgs\": {}, \
                 \"local_bytes\": {}, \"cross_bytes\": {}, \"mailbox\": {:?}",
                s.kind.as_str(),
                s.seq,
                s.local_msgs,
                s.cross_msgs,
                s.local_bytes,
                s.cross_bytes,
                s.mailbox,
            ));
            if with_timing {
                out.push_str(&format!(
                    ", \"transfer_ns\": {:?}, \"combine_ns\": {:?}",
                    s.transfer_ns, s.combine_ns
                ));
            }
            out.push_str(&format!(
                ", \"traffic\": {}}}{}\n",
                s.traffic.to_json(),
                comma(i, self.iterations.len()),
            ));
        }
        out.push_str("  ],\n");
        let m = self.traffic_matrix();
        out.push_str(&format!(
            "  \"traffic_matrix\": {{\"local_bytes\": {}, \"cross_bytes\": {}, \"matrix\": {}}}",
            m.diagonal_total(),
            m.off_diagonal_total(),
            m.to_json(),
        ));
    }

    /// The shared counters/gauges/histograms tail of both exports.
    fn push_metrics_json(&self, out: &mut String) {
        out.push_str("  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            out.push_str(&format!("{}\n    \"{}\": {}", if i == 0 { "" } else { "," }, esc(k), v));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            out.push_str(&format!("{}\n    \"{}\": {}", if i == 0 { "" } else { "," }, esc(k), v));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        // Labeled histograms render as `name.label` entries after the plain
        // ones; both maps iterate sorted, so the document is deterministic.
        let mut entries: Vec<(String, &Hist)> =
            self.hists.iter().map(|(k, h)| ((*k).to_string(), h)).collect();
        entries.extend(self.labeled_hists.iter().map(|((k, l), h)| (format!("{k}.{l}"), h)));
        for (i, (k, h)) in entries.iter().enumerate() {
            out.push_str(&format!(
                "{}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}",
                if i == 0 { "" } else { "," },
                esc(k),
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
            ));
        }
        out.push_str("\n  }");
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 == len {
        ""
    } else {
        ","
    }
}

/// Minimal JSON string escaping (names and labels are ASCII identifiers,
/// but panics messages etc. must not break the document).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests in this module touch the global registry outside any session
    /// (to prove inertness), so they must not interleave with each other.
    static TEST_GATE: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        TEST_GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_is_inert() {
        let _g = serial();
        assert!(!enabled());
        counter_add("x", 5);
        observe("h", 3);
        gauge_set("g", 1);
        let s = span!("nothing", "p{}", 3);
        assert_eq!(s.id(), None);
        drop(s);
        let session = ObsSession::begin();
        let report = session.finish();
        assert!(report.counters.is_empty(), "pre-session writes must vanish");
        assert!(report.spans.is_empty());
    }

    #[test]
    fn counters_gauges_hists_accumulate() {
        let _g = serial();
        let session = ObsSession::begin();
        counter_add("msgs", 3);
        counter_add("msgs", 4);
        gauge_set("parts", 8);
        gauge_set("parts", 9);
        observe("mailbox", 0);
        observe("mailbox", 5);
        observe("mailbox", 5);
        let r = session.finish();
        assert_eq!(r.counter("msgs"), 7);
        assert_eq!(r.gauges["parts"], 9);
        let h = &r.hists["mailbox"];
        assert_eq!((h.count, h.sum, h.min, h.max), (3, 10, 0, 5));
        assert_eq!(h.buckets[&0], 1); // the zero sample
        assert_eq!(h.buckets[&3], 2); // 5 is 3 bits wide
        assert!(!enabled(), "finish must disable recording");
    }

    #[test]
    fn spans_nest_and_record_parents() {
        let _g = serial();
        let session = ObsSession::begin();
        let outer = span!("outer");
        let outer_id = outer.id().unwrap();
        {
            let _inner = span!("inner", "i{}", 1);
        }
        let worker = span_under("worker", Some(outer_id), || "w0".into());
        drop(worker);
        drop(outer);
        let r = session.finish();
        assert_eq!(r.spans.len(), 3);
        let inner = r.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(inner.parent, Some(outer_id));
        assert_eq!(inner.label, "i1");
        let worker = r.spans.iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(worker.parent, Some(outer_id));
        let outer = r.spans.iter().find(|s| s.name == "outer").unwrap();
        assert!(inner.start_ns >= outer.start_ns && inner.end_ns <= outer.end_ns);
        assert_eq!(r.parent_key(inner), "outer[]");
    }

    #[test]
    fn span_seq_numbers_occurrences() {
        let _g = serial();
        let session = ObsSession::begin();
        for _ in 0..3 {
            let _it = span_seq("iter");
        }
        let r = session.finish();
        let labels: Vec<&str> =
            r.spans.iter().filter(|s| s.name == "iter").map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["#0", "#1", "#2"]);
    }

    #[test]
    fn cross_thread_spans_parent_explicitly() {
        let _g = serial();
        let session = ObsSession::begin();
        let stage = span!("stage");
        let sid = stage.id();
        std::thread::scope(|scope| {
            for i in 0..2 {
                scope.spawn(move || {
                    let _s = span_under("stage.part", sid, || format!("p{i}"));
                });
            }
        });
        drop(stage);
        let r = session.finish();
        assert_eq!(r.span_count("stage.part"), 2);
        for s in r.spans.iter().filter(|s| s.name == "stage.part") {
            assert_eq!(s.parent, sid);
        }
    }

    #[test]
    fn canonical_json_strips_timing_and_sorts() {
        let _g = serial();
        let mk = |order_flip: bool| {
            let session = ObsSession::begin();
            let stage = span!("stage");
            let sid = stage.id();
            let labels = if order_flip { ["p1", "p0"] } else { ["p0", "p1"] };
            for l in labels {
                let _s = span_under("stage.part", sid, || l.to_string());
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            drop(stage);
            counter_add("bytes", 10);
            session.finish().canonical_json()
        };
        let a = mk(false);
        let b = mk(true);
        assert_eq!(a, b, "canonical export must not depend on completion order");
        assert!(!a.contains("start_ns"));
        assert!(!a.contains("thread"));
        assert!(a.contains("\"bytes\": 10"));
    }

    #[test]
    fn labeled_histograms_export_as_dotted_keys() {
        let _g = serial();
        let session = ObsSession::begin();
        observe("serve.latency_us", 100);
        observe_labeled("serve.tenant.latency_us", 3, 40);
        observe_labeled("serve.tenant.latency_us", 3, 60);
        observe_labeled("serve.tenant.latency_us", 7, 9);
        let report = session.finish();
        let h = report.labeled_hist("serve.tenant.latency_us", 3).expect("tenant 3 recorded");
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 100, 40, 60));
        assert!(report.labeled_hist("serve.tenant.latency_us", 5).is_none());
        let j = report.to_json();
        assert!(
            j.contains("\"serve.tenant.latency_us.3\": {\"count\": 2, \"sum\": 100"),
            "labeled hist in histograms object: {j}"
        );
        assert!(j.contains("\"serve.tenant.latency_us.7\""));
        let prom = crate::export::prometheus_text(&report);
        assert!(prom.contains("# TYPE surfer_serve_tenant_latency_us summary\n"), "{prom}");
        assert!(prom.contains("surfer_serve_tenant_latency_us_count{label=\"3\"} 2\n"), "{prom}");
        assert!(prom.contains("surfer_serve_tenant_latency_us_max{label=\"7\"} 9\n"));
    }

    #[test]
    fn try_begin_while_active_is_a_typed_error_across_threads() {
        let _g = serial();
        let session = ObsSession::begin();
        // Same thread: the gate is held, so try_begin must refuse.
        let here = ObsSession::try_begin();
        assert_eq!(here.err(), Some(SessionBusy));
        // Another thread contending must get the same typed error, not a
        // silent wait or a panic.
        let from_thread = std::thread::spawn(|| match ObsSession::try_begin() {
            Err(SessionBusy) => format!("{SessionBusy}"),
            Ok(_) => "unexpectedly began".to_string(),
        })
        .join()
        .expect("prober thread");
        assert!(from_thread.contains("already recording"), "{from_thread}");
        counter_add("survivor", 1);
        let r = session.finish();
        assert_eq!(r.counter("survivor"), 1, "the original session must be unharmed");
        // With the gate released, try_begin succeeds.
        let s2 = ObsSession::try_begin().expect("gate is free");
        let _ = s2.finish();
    }

    #[test]
    fn span_stack_names_active_spans_outermost_first() {
        let _g = serial();
        let session = ObsSession::begin();
        assert!(span_stack().is_empty());
        {
            let _outer = span!("ckpt.write");
            let _inner = span!("ckpt.write.replica");
            assert_eq!(span_stack(), vec!["ckpt.write", "ckpt.write.replica"]);
        }
        assert!(span_stack().is_empty(), "guards must pop their stack frames");
        let _ = session.finish();
    }

    #[test]
    fn full_json_has_schema_and_stages() {
        let _g = serial();
        let session = ObsSession::begin();
        {
            let _s = span!("work");
        }
        counter_add("n", 1);
        observe("h", 2);
        let j = session.finish().to_json();
        assert!(j.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")));
        assert!(j.contains("\"stages\""));
        assert!(j.contains("\"name\": \"work\""));
        assert!(j.contains("\"histograms\""));
        // Braces balance (cheap well-formedness check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn json_escaping_survives_hostile_labels() {
        let _g = serial();
        let session = ObsSession::begin();
        {
            let _s = span_with("weird", || "a\"b\\c\nd".to_string());
        }
        let j = session.finish().to_json();
        assert!(j.contains("a\\\"b\\\\c\\nd"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn sessions_reset_state() {
        let _g = serial();
        let s1 = ObsSession::begin();
        counter_add("x", 1);
        let _ = s1.finish();
        let s2 = ObsSession::begin();
        counter_add("y", 2);
        let r = s2.finish();
        assert_eq!(r.counter("x"), 0, "previous session must not leak");
        assert_eq!(r.counter("y"), 2);
    }
}
