//! Trace exporters: Chrome Trace Event JSON (Perfetto / chrome://tracing)
//! and Prometheus-style text exposition.
//!
//! The Chrome export turns every recorded span into a `"ph": "X"` complete
//! event on its OS thread's track and every flight-recorder sample into
//! `"ph": "C"` counter events (local/cross bytes and messages per engine
//! round), anchored at the wall-clock end of the round's coordinating span.
//! `reproduce -- perfetto` writes it to `TRACE_perfetto.json`; load the
//! file at <https://ui.perfetto.dev> or `chrome://tracing`.
//!
//! The Prometheus export is a plain-text snapshot of the metrics registry
//! (counters, gauges, histograms as `_count`/`_sum`/`_min`/`_max` series)
//! for scrapers and diff tools.

use crate::{StageKind, TraceReport};

/// The span name that coordinates one round of each [`StageKind`] — the
/// anchor for that kind's counter track events.
fn anchor_span(kind: StageKind) -> &'static str {
    match kind {
        StageKind::Propagation => "prop.iteration",
        StageKind::Virtual => "virt.run",
        StageKind::MapReduce => "mr.run",
        StageKind::Checkpoint => "ckpt.write",
        StageKind::Restore => "ckpt.restore",
    }
}

/// Microsecond timestamp with sub-µs precision (trace-event `ts` unit).
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e3)
}

/// Render `report` as a Chrome Trace Event JSON document.
///
/// Structure: one process (`pid` 0), one track per recording OS thread
/// (`"ph": "M"` thread-name metadata + `"ph": "X"` complete events), plus
/// `"ph": "C"` counter tracks fed by the flight recorder. The document is
/// the JSON-object form (`{"traceEvents": [...]}`), which both Perfetto and
/// `chrome://tracing` accept.
pub fn chrome_trace_json(report: &TraceReport) -> String {
    let mut threads: Vec<&str> = report.spans.iter().map(|s| s.thread.as_str()).collect();
    threads.sort_unstable();
    threads.dedup();
    // lint:allow(E1, every span thread was inserted into `threads` above)
    let tid_of = |t: &str| threads.binary_search(&t).expect("thread listed") as u64;

    let mut events: Vec<String> = Vec::new();
    for (tid, t) in threads.iter().enumerate() {
        events.push(format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {tid}, \
             \"args\": {{\"name\": \"{}\"}}}}",
            crate::esc(t)
        ));
    }
    for s in &report.spans {
        let cat = s.name.split('.').next().unwrap_or("span");
        events.push(format!(
            "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"pid\": 0, \"tid\": {}, \
             \"ts\": {}, \"dur\": {}, \"args\": {{\"label\": \"{}\"}}}}",
            crate::esc(s.name),
            crate::esc(cat),
            tid_of(&s.thread),
            us(s.start_ns),
            us(s.end_ns.saturating_sub(s.start_ns)),
            crate::esc(&s.label),
        ));
    }

    // Counter tracks: one bytes + one messages series pair per engine kind,
    // sampled at the end of each round's coordinating span. Rounds whose
    // anchor span is missing (e.g. a sample recorded outside the engines)
    // are skipped rather than misplaced at t=0.
    for sample in &report.iterations {
        let name = anchor_span(sample.kind);
        let mut anchors: Vec<u64> = report
            .spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.end_ns)
            .collect();
        anchors.sort_unstable();
        let Some(&ts) = anchors.get(sample.seq as usize) else { continue };
        let kind = sample.kind.as_str();
        events.push(format!(
            "{{\"name\": \"{kind}.bytes\", \"cat\": \"recorder\", \"ph\": \"C\", \"pid\": 0, \
             \"ts\": {}, \"args\": {{\"local\": {}, \"cross\": {}}}}}",
            us(ts),
            sample.local_bytes,
            sample.cross_bytes,
        ));
        events.push(format!(
            "{{\"name\": \"{kind}.messages\", \"cat\": \"recorder\", \"ph\": \"C\", \"pid\": 0, \
             \"ts\": {}, \"args\": {{\"local\": {}, \"cross\": {}}}}}",
            us(ts),
            sample.local_msgs,
            sample.cross_msgs,
        ));
    }

    let mut out = String::from("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str(e);
        out.push_str(crate::comma(i, events.len()));
        out.push('\n');
    }
    out.push_str("]\n}\n");
    out
}

/// A metric name as a Prometheus identifier: `surfer_` prefix, every
/// non-alphanumeric character folded to `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("surfer_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Escape a Prometheus label *value*: the text exposition format requires
/// backslash, double-quote and newline to be backslash-escaped.
fn prom_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// `# HELP` + `# TYPE` header of one metric family.
fn push_family_meta(out: &mut String, n: &str, source: &str, what: &str, prom_type: &str) {
    out.push_str(&format!("# HELP {n} Flight-recorder {what} `{source}`.\n"));
    out.push_str(&format!("# TYPE {n} {prom_type}\n"));
}

/// The four series of one histogram (`sel` is the `{label="…"}` selector,
/// empty for unlabeled histograms).
fn push_hist_series(out: &mut String, n: &str, sel: &str, h: &crate::Hist) {
    out.push_str(&format!("{n}_count{sel} {}\n", h.count));
    out.push_str(&format!("{n}_sum{sel} {}\n", h.sum));
    out.push_str(&format!("{n}_min{sel} {}\n", if h.count == 0 { 0 } else { h.min }));
    out.push_str(&format!("{n}_max{sel} {}\n", h.max));
}

/// Render the metrics registry in the Prometheus text exposition format:
/// every family gets `# HELP` and `# TYPE` lines; counters and gauges
/// render verbatim, each histogram as four series (`_count`, `_sum`,
/// `_min`, `_max`), and labeled histograms as one family per base name
/// with a `{label="…"}` selector per series (label values escaped).
pub fn prometheus_text(report: &TraceReport) -> String {
    let mut out = String::new();
    for (k, v) in &report.counters {
        let n = prom_name(k);
        push_family_meta(&mut out, &n, k, "counter", "counter");
        out.push_str(&format!("{n} {v}\n"));
    }
    for (k, v) in &report.gauges {
        let n = prom_name(k);
        push_family_meta(&mut out, &n, k, "gauge", "gauge");
        out.push_str(&format!("{n} {v}\n"));
    }
    for (k, h) in &report.hists {
        let n = prom_name(k);
        push_family_meta(&mut out, &n, k, "histogram", "summary");
        push_hist_series(&mut out, &n, "", h);
    }
    // Labeled histograms iterate sorted by (name, label), so one family
    // header per base name followed by its label series.
    let mut last_base: Option<&str> = None;
    for ((k, l), h) in &report.labeled_hists {
        let n = prom_name(k);
        if last_base != Some(*k) {
            push_family_meta(&mut out, &n, k, "labeled histogram", "summary");
            last_base = Some(*k);
        }
        let sel = format!("{{label=\"{}\"}}", prom_label_value(&l.to_string()));
        push_hist_series(&mut out, &n, &sel, h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IterationSample, ObsSession};

    #[test]
    fn chrome_trace_structure_is_wellformed() {
        let session = ObsSession::begin();
        {
            let _it = crate::span_seq("prop.iteration");
            let _t = crate::span!("prop.transfer", "p{}", 0);
        }
        let mut s = IterationSample::new(StageKind::Propagation);
        s.local_bytes = 12;
        s.cross_bytes = 34;
        s.local_msgs = 5;
        s.cross_msgs = 6;
        crate::record_sample(s);
        let j = chrome_trace_json(&session.finish());
        assert!(j.contains("\"traceEvents\""));
        assert!(j.contains("\"ph\": \"M\""), "thread metadata: {j}");
        assert!(j.contains("\"ph\": \"X\""), "complete events: {j}");
        assert!(j.contains("\"ph\": \"C\""), "counter events: {j}");
        assert!(j.contains("\"propagation.bytes\""));
        assert!(j.contains("\"local\": 12, \"cross\": 34"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn chrome_trace_skips_unanchored_samples() {
        let session = ObsSession::begin();
        crate::record_sample(IterationSample::new(StageKind::Restore));
        let j = chrome_trace_json(&session.finish());
        assert!(!j.contains("restore.bytes"), "sample without a ckpt.restore span: {j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn prometheus_text_renders_all_metric_classes() {
        let session = ObsSession::begin();
        crate::counter_add("prop.messages", 7);
        crate::gauge_set("parts", 8);
        crate::observe("prop.mailbox_size", 3);
        crate::observe("prop.mailbox_size", 5);
        let text = prometheus_text(&session.finish());
        assert!(text.contains(
            "# HELP surfer_prop_messages Flight-recorder counter `prop.messages`.\n\
             # TYPE surfer_prop_messages counter\nsurfer_prop_messages 7\n"
        ));
        assert!(text.contains(
            "# HELP surfer_parts Flight-recorder gauge `parts`.\n\
             # TYPE surfer_parts gauge\nsurfer_parts 8\n"
        ));
        assert!(text.contains(
            "# HELP surfer_prop_mailbox_size Flight-recorder histogram `prop.mailbox_size`.\n\
             # TYPE surfer_prop_mailbox_size summary\n"
        ));
        assert!(text.contains("surfer_prop_mailbox_size_count 2\n"));
        assert!(text.contains("surfer_prop_mailbox_size_sum 8\n"));
        assert!(text.contains("surfer_prop_mailbox_size_min 3\n"));
        assert!(text.contains("surfer_prop_mailbox_size_max 5\n"));
    }

    #[test]
    fn prometheus_labeled_histograms_pin_exact_family_format() {
        let session = ObsSession::begin();
        crate::observe_labeled("serve.tenant.latency_us", 0, 10);
        crate::observe_labeled("serve.tenant.latency_us", 0, 20);
        crate::observe_labeled("serve.tenant.latency_us", 2, 5);
        let text = prometheus_text(&session.finish());
        // One family header, then one series block per label, in order.
        let expected = "# HELP surfer_serve_tenant_latency_us Flight-recorder labeled \
                        histogram `serve.tenant.latency_us`.\n\
                        # TYPE surfer_serve_tenant_latency_us summary\n\
                        surfer_serve_tenant_latency_us_count{label=\"0\"} 2\n\
                        surfer_serve_tenant_latency_us_sum{label=\"0\"} 30\n\
                        surfer_serve_tenant_latency_us_min{label=\"0\"} 10\n\
                        surfer_serve_tenant_latency_us_max{label=\"0\"} 20\n\
                        surfer_serve_tenant_latency_us_count{label=\"2\"} 1\n\
                        surfer_serve_tenant_latency_us_sum{label=\"2\"} 5\n\
                        surfer_serve_tenant_latency_us_min{label=\"2\"} 5\n\
                        surfer_serve_tenant_latency_us_max{label=\"2\"} 5\n";
        assert_eq!(text, expected, "exact exposition format drifted:\n{text}");
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        assert_eq!(prom_label_value("plain"), "plain");
        assert_eq!(prom_label_value("a\\b"), "a\\\\b");
        assert_eq!(prom_label_value("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(prom_label_value("line\nbreak"), "line\\nbreak");
    }

    #[test]
    fn chrome_trace_of_an_empty_report_is_valid() {
        let j = chrome_trace_json(&TraceReport::default());
        assert!(j.contains("\"traceEvents\": [\n]"), "empty event array: {j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.trim_end().ends_with('}'));
    }

    #[test]
    fn chrome_trace_with_labeled_histograms_is_valid() {
        let session = ObsSession::begin();
        crate::observe_labeled("serve.tenant.latency_us", 1, 42);
        crate::observe_labeled("serve.tenant.latency_us", 2, 7);
        let report = session.finish();
        let j = chrome_trace_json(&report);
        // Labeled histograms carry no spans or samples; the export must
        // still be a well-formed (if eventless) document.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!j.contains("\"ph\": \"X\""));
    }

    #[test]
    fn chrome_trace_of_a_single_span_is_valid() {
        let session = ObsSession::begin();
        {
            let _only = crate::span!("prop.iteration");
        }
        let j = chrome_trace_json(&session.finish());
        // Exactly one metadata event and one complete event, no trailing
        // comma before the array close.
        assert_eq!(j.matches("\"ph\": \"M\"").count(), 1);
        assert_eq!(j.matches("\"ph\": \"X\"").count(), 1);
        assert!(!j.contains(",\n]"), "trailing comma: {j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
