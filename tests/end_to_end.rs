//! End-to-end integration through the public `surfer` facade: partitioning
//! invariants that the differential suite does not sweep.
//!
//! Per-app correctness across primitives, optimization levels and thread
//! counts lives in `tests/conformance.rs`.

use surfer::apps::{pagerank::NetworkRanking, ExactOutput};
use surfer::prelude::*;

const SEED: u64 = 0xE2E;

#[test]
fn results_are_invariant_to_partition_count() {
    let graph = msn_like(MsnScale::Tiny, SEED);
    let app = NetworkRanking::new(3);
    let reference = app.reference(&graph);
    for p in [1u32, 2, 16] {
        let cluster = ClusterConfig::flat(4).build();
        let s = Surfer::builder(cluster).partitions(p).load(&graph);
        assert!(
            s.run(&app).unwrap().output.approx_eq(&reference, 1e-12),
            "results diverged at P = {p}"
        );
    }
}

#[test]
fn auto_partitioning_respects_the_memory_formula() {
    let graph = msn_like(MsnScale::Tiny, SEED);
    let mem = graph.storage_bytes() / 5; // forces ceil(log2 5) -> 8 partitions
    let cluster = ClusterConfig::flat(4).memory_bytes(mem).build();
    let s = Surfer::builder(cluster).load(&graph);
    assert_eq!(s.partitioned().num_partitions(), 8);
    for pid in s.partitioned().partitions() {
        // The formula exists to make partitions fit in memory; allow modest
        // skew above the mean but nothing pathological.
        assert!(
            s.partitioned().meta(pid).bytes < 2 * mem,
            "partition {pid} badly oversized"
        );
    }
}
