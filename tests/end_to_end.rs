//! End-to-end integration: generate a social graph, load it onto a
//! simulated cloud through the public `surfer` facade, run every
//! application on both primitives, and check the results against serial
//! references.

use surfer::apps::{
    degree_dist::VertexDegreeDistribution, pagerank::NetworkRanking,
    recommender::RecommenderSystem, reverse::ReverseLinkGraph, triangle::TriangleCounting,
    two_hop::TwoHopFriends, ExactOutput,
};
use surfer::core::OptimizationLevel;
use surfer::prelude::*;

const SEED: u64 = 0xE2E;

fn fixture() -> (CsrGraph, Surfer) {
    let graph = msn_like(MsnScale::Tiny, SEED);
    let cluster = ClusterConfig::tree(2, 1, 8).build();
    let surfer = Surfer::builder(cluster)
        .partitions(8)
        .optimization(OptimizationLevel::O4)
        .load(&graph);
    (graph, surfer)
}

#[test]
fn pagerank_matches_reference_on_both_primitives() {
    let (g, s) = fixture();
    let app = NetworkRanking::new(4);
    let reference = app.reference(&g);
    let prop = s.run(&app).unwrap();
    let mr = s.run_mapreduce(&app).unwrap();
    assert!(prop.output.approx_eq(&reference, 1e-12));
    assert!(mr.output.approx_eq(&reference, 1e-9));
}

#[test]
fn recommender_matches_reference() {
    let (g, s) = fixture();
    let app = RecommenderSystem::new(4, SEED);
    let reference = app.reference(&g);
    assert_eq!(s.run(&app).unwrap().output, reference);
    assert_eq!(s.run_mapreduce(&app).unwrap().output, reference);
    assert!(reference.count() > 0, "campaign should spread");
}

#[test]
fn triangle_count_matches_reference() {
    let (g, s) = fixture();
    let app = TriangleCounting::new(SEED);
    let reference = app.reference(&g);
    assert_eq!(s.run(&app).unwrap().output, reference);
    assert_eq!(s.run_mapreduce(&app).unwrap().output, reference);
    assert!(reference.triangles > 0, "sample found no triangles");
}

#[test]
fn degree_distribution_matches_reference() {
    let (g, s) = fixture();
    let reference = VertexDegreeDistribution.reference(&g);
    assert_eq!(s.run(&VertexDegreeDistribution).unwrap().output, reference);
    assert_eq!(s.run_mapreduce(&VertexDegreeDistribution).unwrap().output, reference);
}

#[test]
fn reverse_link_graph_matches_reference() {
    let (g, s) = fixture();
    let reference = ReverseLinkGraph.reference(&g);
    assert_eq!(s.run(&ReverseLinkGraph).unwrap().output, reference);
    assert_eq!(s.run_mapreduce(&ReverseLinkGraph).unwrap().output, reference);
}

#[test]
fn two_hop_lists_match_reference() {
    let (g, s) = fixture();
    let app = TwoHopFriends::new(SEED);
    let reference = app.reference(&g);
    assert_eq!(s.run(&app).unwrap().output, reference);
    assert_eq!(s.run_mapreduce(&app).unwrap().output, reference);
}

#[test]
fn results_are_invariant_to_optimization_level() {
    // O1..O4 change placement and locality optimizations — never results.
    let graph = msn_like(MsnScale::Tiny, SEED);
    let app = NetworkRanking::new(3);
    let mut outputs = Vec::new();
    for level in OptimizationLevel::ALL {
        let cluster = ClusterConfig::tree(2, 1, 8).build();
        let s = Surfer::builder(cluster).partitions(8).optimization(level).load(&graph);
        outputs.push(s.run(&app).unwrap().output);
    }
    for o in &outputs[1..] {
        assert!(o.approx_eq(&outputs[0], 1e-12), "optimization level changed results");
    }
}

#[test]
fn results_are_invariant_to_partition_count() {
    let graph = msn_like(MsnScale::Tiny, SEED);
    let app = NetworkRanking::new(3);
    let reference = app.reference(&graph);
    for p in [1u32, 2, 16] {
        let cluster = ClusterConfig::flat(4).build();
        let s = Surfer::builder(cluster).partitions(p).load(&graph);
        assert!(
            s.run(&app).unwrap().output.approx_eq(&reference, 1e-12),
            "results diverged at P = {p}"
        );
    }
}

#[test]
fn auto_partitioning_respects_the_memory_formula() {
    let graph = msn_like(MsnScale::Tiny, SEED);
    let mem = graph.storage_bytes() / 5; // forces ceil(log2 5) -> 8 partitions
    let cluster = ClusterConfig::flat(4).memory_bytes(mem).build();
    let s = Surfer::builder(cluster).load(&graph);
    assert_eq!(s.partitioned().num_partitions(), 8);
    for pid in s.partitioned().partitions() {
        // The formula exists to make partitions fit in memory; allow modest
        // skew above the mean but nothing pathological.
        assert!(
            s.partitioned().meta(pid).bytes < 2 * mem,
            "partition {pid} badly oversized"
        );
    }
}
