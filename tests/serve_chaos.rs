//! Multi-tenant serving chaos: one tenant's job is sabotaged with a
//! `FaultPlan` (UDF panics, machine crashes, corrupted snapshots) while two
//! healthy tenants run the same propagation workload through the same
//! `JobManager`. The contract under test is **isolation**: the faulted
//! tenant's job ends in a *typed* `SurferError` — never a hang, abort, or
//! silent wrong result — and the healthy tenants' outputs stay
//! bit-identical to a fault-free run, at every worker-thread count.
//!
//! The closing proptest pins scheduler determinism itself: a seeded mix of
//! jobs (tenants, lengths, injected panics) completes in the same order
//! with the same per-job results for threads {1, 2, max} and across
//! repeated runs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::Arc;
use surfer::apps::pagerank::PageRankPropagation;
use surfer::cluster::{
    ClusterConfig, FaultPlan, MachineCrash, MachineId, SimCluster, SnapshotCorruption, UdfPanicAt,
};
use surfer::core::{EngineOptions, Propagation, PropagationEngine, RecoveryConfig, SurferError};
use surfer::graph::builder::from_edges;
use surfer::graph::{CsrGraph, VertexId};
use surfer::partition::{PartitionedGraph, Partitioning};
use surfer::serve::job::encode_states;
use surfer::serve::{
    JobManager, JobSpec, PropagationJob, RecoveredJob, ServeConfig, TenantId,
};

const ITERATIONS: u32 = 6;
const INTERVAL: u32 = 2;

/// The chaos fixture: a 12-cycle over 4 partitions on 4 flat-T1 machines.
fn fixture() -> (SimCluster, PartitionedGraph) {
    let g = from_edges(12, (0..12u32).map(|v| (v, (v + 1) % 12)).collect::<Vec<_>>());
    let p = Partitioning::new((0..12u32).map(|v| v / 3).collect(), 4);
    let placement = (0..4).map(MachineId).collect();
    let pg = PartitionedGraph::from_parts(Arc::new(g), p, placement);
    (ClusterConfig::flat(4).build(), pg)
}

fn prog() -> PageRankPropagation {
    PageRankPropagation { damping: 0.85, n: 12 }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("surfer-serve-chaos-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn serve_cfg() -> ServeConfig {
    ServeConfig { capacity: 16, tenant_quota: 8, ..ServeConfig::default() }
}

/// PageRank with a landmine: `transfer` from the poisoned vertex panics on
/// every attempt, so the serving layer's retry budget is what decides the
/// job's fate.
struct PoisonedPageRank {
    inner: PageRankPropagation,
    poison: u32,
}

impl Propagation for PoisonedPageRank {
    type State = <PageRankPropagation as Propagation>::State;
    type Msg = <PageRankPropagation as Propagation>::Msg;

    fn init(&self, v: VertexId, g: &CsrGraph) -> Self::State {
        self.inner.init(v, g)
    }

    fn transfer(
        &self,
        from: VertexId,
        state: &Self::State,
        to: VertexId,
        g: &CsrGraph,
    ) -> Option<Self::Msg> {
        assert!(from != VertexId(self.poison), "poisoned transfer");
        self.inner.transfer(from, state, to, g)
    }

    fn combine(
        &self,
        v: VertexId,
        old: &Self::State,
        msgs: Vec<Self::Msg>,
        g: &CsrGraph,
    ) -> Self::State {
        self.inner.combine(v, old, msgs, g)
    }

    fn associative(&self) -> bool {
        self.inner.associative()
    }

    fn merge(&self, a: Self::Msg, b: Self::Msg) -> Self::Msg {
        self.inner.merge(a, b)
    }

    fn msg_bytes(&self, msg: &Self::Msg) -> u64 {
        self.inner.msg_bytes(msg)
    }
}

/// Drive one isolation scenario: tenants 0 and 2 run healthy propagation
/// jobs, tenant 1 runs a checkpointed job under `plan`; assert the typed
/// failure for tenant 1 and bit-identical results for the others, at every
/// thread count.
fn assert_isolated(
    name: &str,
    plan: &FaultPlan,
    tweak: impl Fn(&mut RecoveryConfig),
    expect: impl Fn(&SurferError) -> bool,
) {
    let (c, pg) = fixture();
    let p = prog();
    let engine = PropagationEngine::new(&c, &pg, EngineOptions::full());
    let mut baseline = engine.init_state(&p);
    engine.run(&p, &mut baseline, ITERATIONS).unwrap();
    let want = encode_states(&baseline);

    for threads in [1usize, 2, 0] {
        let opts = EngineOptions::full().threads(threads);
        let mut rc = RecoveryConfig::new(INTERVAL, tmp(&format!("{name}-{threads}")));
        tweak(&mut rc);
        let mut m = JobManager::new(serve_cfg());
        let healthy_a = m
            .submit(
                JobSpec::new(TenantId(0)),
                Box::new(PropagationJob::new(
                    PropagationEngine::new(&c, &pg, opts),
                    &p,
                    ITERATIONS,
                )),
            )
            .unwrap();
        let faulted = m
            .submit(
                JobSpec::new(TenantId(1)).retries(0),
                Box::new(RecoveredJob::new(
                    &c,
                    &pg,
                    opts,
                    &p,
                    ITERATIONS,
                    rc.clone(),
                    plan.clone(),
                )),
            )
            .unwrap();
        let healthy_b = m
            .submit(
                JobSpec::new(TenantId(2)),
                Box::new(PropagationJob::new(
                    PropagationEngine::new(&c, &pg, opts),
                    &p,
                    ITERATIONS,
                )),
            )
            .unwrap();

        // Termination is part of the contract: run_to_completion returns.
        m.run_to_completion();
        assert_eq!(m.in_flight(), 0, "threads={threads}: all jobs must be terminal");

        for id in [healthy_a, healthy_b] {
            let out = m.outcome(id).unwrap();
            let bytes = out.result.as_ref().unwrap_or_else(|e| {
                panic!("threads={threads}: healthy tenant {:?} failed: {e}", out.tenant)
            });
            assert_eq!(
                bytes.as_slice(),
                want.as_slice(),
                "threads={threads}: healthy tenant {:?} diverged from the fault-free run",
                out.tenant
            );
        }
        let out = m.outcome(faulted).unwrap();
        match &out.result {
            Err(e) => assert!(expect(e), "threads={threads}: unexpected error {e:?}"),
            Ok(_) => panic!("threads={threads}: the faulted job must fail typed"),
        }
        // Forensics ride along with isolation: the typed failure flushed a
        // schema-valid post-mortem bundle attributed to the faulted tenant.
        let bundle = surfer::obs::postmortem::take_last()
            .expect("a typed serve failure must flush a post-mortem bundle");
        assert_eq!(
            bundle.fault_ctx.job,
            faulted.0,
            "threads={threads}: bundle names the wrong job"
        );
        assert_eq!(bundle.fault_ctx.tenant, 1, "threads={threads}: bundle names the wrong tenant");
        let problems = surfer::obs::postmortem::validate(&bundle.to_json());
        assert!(problems.is_empty(), "threads={threads}: schema problems {problems:?}");
        let _ = std::fs::remove_dir_all(&rc.dir);
    }
}

/// A tenant whose UDFs panic past the retry budget fails with
/// `RetriesExhausted`; neighbors are unaffected.
#[test]
fn udf_panic_exhaustion_is_contained_to_its_tenant() {
    let plan = FaultPlan {
        udf_panics: vec![UdfPanicAt { iteration: 1, vertex: 4 }],
        ..FaultPlan::none()
    };
    assert_isolated(
        "panic",
        &plan,
        |rc| rc.max_udf_retries = 0,
        |e| matches!(e, SurferError::RetriesExhausted { iteration: 1, .. }),
    );
}

/// A tenant that loses every machine of its (checkpointed) run fails with
/// `ClusterLost`; neighbors are unaffected.
#[test]
fn losing_the_whole_cluster_is_contained_to_its_tenant() {
    let plan = FaultPlan {
        crashes: (0..4).map(|m| MachineCrash { machine: MachineId(m), at_iteration: 2 }).collect(),
        ..FaultPlan::none()
    };
    assert_isolated(
        "cluster-lost",
        &plan,
        |_| {},
        |e| matches!(e, SurferError::ClusterLost),
    );
}

/// A tenant whose snapshot replicas are all corrupted fails with
/// `ReplicasExhausted`; neighbors are unaffected.
#[test]
fn corrupted_snapshots_are_contained_to_their_tenant() {
    let plan = FaultPlan {
        crashes: vec![MachineCrash { machine: MachineId(0), at_iteration: 3 }],
        corruptions: vec![
            SnapshotCorruption { checkpoint: 2, partition: 0, replica: 1 },
            SnapshotCorruption { checkpoint: 2, partition: 0, replica: 2 },
        ],
        ..FaultPlan::none()
    };
    assert_isolated(
        "corrupt",
        &plan,
        |_| {},
        |e| matches!(e, SurferError::ReplicasExhausted { partition: 0, iteration: 2 }),
    );
}

/// FNV-1a digest of a result blob, for compact equality traces.
fn digest(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(0x1_0000_01b3)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Seeded job mixes (tenants, lengths, injected panics) complete in the
    /// same order with the same per-job results for threads {1, 2, max} and
    /// across repeated runs.
    #[test]
    fn scheduler_is_deterministic_across_threads_and_repeats(seed in 0u64..200) {
        let (c, pg) = fixture();
        let p = prog();
        let poisoned = PoisonedPageRank { inner: prog(), poison: 5 };

        let mut runs: Vec<Vec<(u64, u64, u32, String)>> = Vec::new();
        for threads in [1usize, 2, 0] {
            for _rep in 0..2 {
                let opts = EngineOptions::full().threads(threads);
                let mut rng = StdRng::seed_from_u64(seed);
                let mut m = JobManager::new(ServeConfig {
                    capacity: 32,
                    tenant_quota: 16,
                    ..ServeConfig::default()
                });
                for _ in 0..6 {
                    let tenant = TenantId(rng.gen_range(0..3u16));
                    let iterations = rng.gen_range(1..4u32);
                    if rng.gen_bool(0.25) {
                        m.submit(
                            JobSpec::new(tenant).retries(1),
                            Box::new(PropagationJob::new(
                                PropagationEngine::new(&c, &pg, opts),
                                &poisoned,
                                iterations,
                            )),
                        )
                        .unwrap();
                    } else {
                        m.submit(
                            JobSpec::new(tenant),
                            Box::new(PropagationJob::new(
                                PropagationEngine::new(&c, &pg, opts),
                                &p,
                                iterations,
                            )),
                        )
                        .unwrap();
                    }
                }
                m.run_to_completion();
                let trace: Vec<(u64, u64, u32, String)> = m
                    .outcomes()
                    .iter()
                    .map(|o| {
                        let r = match &o.result {
                            Ok(bytes) => format!("ok:{:016x}", digest(bytes)),
                            Err(e) => format!("err:{e}"),
                        };
                        (o.job.0, o.completed_at.0, o.retries, r)
                    })
                    .collect();
                runs.push(trace);
            }
        }
        for (i, run) in runs.iter().enumerate().skip(1) {
            prop_assert_eq!(
                &runs[0],
                run,
                "seed {}: run {} diverged (completion order, timing or results)",
                seed,
                i
            );
        }
    }
}
