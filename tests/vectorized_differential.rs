//! Differential suite for the columnar kernel lane: on random graphs,
//! random partitionings and every thread knob, the vectorized fast path
//! must be *bit-identical* to the scalar UDF path — states, outputs,
//! message counts and `ExecReport`s — with and without the packed varint
//! adjacency. Also pins the `PackedCsr` round-trip byte-exactly.

use proptest::prelude::*;
use std::sync::Arc;
use surfer::apps::components::ComponentPropagation;
use surfer::apps::degree_dist::DegreeVirtualTask;
use surfer::apps::pagerank::PageRankPropagation;
use surfer::apps::shortest_paths::BfsPropagation;
use surfer::cluster::{ClusterConfig, MachineId, SimCluster};
use surfer::core::{EngineOptions, PropagationEngine};
use surfer::graph::{builder::from_edges, CsrGraph, PackedCsr, VertexId};
use surfer::partition::{random_partition, PartitionedGraph};

/// Strategy: a random directed graph with 2..=40 vertices (duplicate edges
/// allowed by construction of `from_edges`' dedup, self-loops kept).
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (2u32..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..160).prop_map(move |edges| from_edges(n, edges))
    })
}

/// Thread knobs under test: sequential, two workers, auto.
const THREADS: [usize; 3] = [1, 2, 0];

fn testbed(g: &CsrGraph, seed: u64) -> (SimCluster, PartitionedGraph) {
    let n = g.num_vertices();
    let p = 4u32.min(n.max(1));
    let machines = 2u16;
    let part = random_partition(n, p, seed);
    let placement = (0..p).map(|i| MachineId((i % machines as u32) as u16)).collect();
    let pg = PartitionedGraph::from_parts(Arc::new(g.clone()), part, placement);
    (ClusterConfig::flat(machines).build(), pg)
}

/// The engine-options matrix both lanes are swept over.
fn option_matrix() -> [EngineOptions; 2] {
    [EngineOptions::none(), EngineOptions::full()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn packed_csr_roundtrips_byte_exactly(g in arb_graph()) {
        let packed = PackedCsr::from_csr(&g);
        prop_assert_eq!(packed.num_vertices(), g.num_vertices());
        prop_assert_eq!(packed.num_edges(), g.num_edges());
        prop_assert_eq!(packed.to_csr().unwrap(), g.clone());
        let mut scratch = Vec::new();
        for v in g.vertices() {
            packed.decode_into(v, &mut scratch);
            prop_assert_eq!(&scratch[..], g.neighbors(v));
            prop_assert_eq!(packed.out_degree(v), g.out_degree(v));
        }
    }

    #[test]
    fn pagerank_fast_path_is_bit_identical(g in arb_graph(), seed in 0u64..50) {
        let prog = PageRankPropagation { damping: 0.85, n: g.num_vertices() as u64 };
        let (c, pg) = testbed(&g, seed);
        for base in option_matrix() {
            for t in THREADS {
                for packed in [false, true] {
                    let engine = PropagationEngine::new(
                        &c, &pg, base.threads(t).packed_adjacency(packed));
                    let mut fast = engine.init_state(&prog);
                    let mut slow = engine.init_state(&prog);
                    for _ in 0..3 {
                        let (rf, mf) = engine
                            .run_iteration_vectorized_counted(&prog, &mut fast)
                            .unwrap();
                        let (rs, ms) = engine.run_iteration_counted(&prog, &mut slow).unwrap();
                        prop_assert_eq!(mf, ms, "messages t={} packed={}", t, packed);
                        prop_assert_eq!(
                            format!("{rf:?}"), format!("{rs:?}"),
                            "reports t={} packed={}", t, packed);
                    }
                    let fast_bits: Vec<u64> = fast.iter().map(|x| x.to_bits()).collect();
                    let slow_bits: Vec<u64> = slow.iter().map(|x| x.to_bits()).collect();
                    prop_assert_eq!(fast_bits, slow_bits, "states t={} packed={}", t, packed);
                }
            }
        }
    }

    #[test]
    fn components_fast_path_is_bit_identical(g in arb_graph(), seed in 0u64..50) {
        let g = g.symmetrize();
        let prog = ComponentPropagation;
        let (c, pg) = testbed(&g, seed);
        for base in option_matrix() {
            for t in THREADS {
                let engine = PropagationEngine::new(&c, &pg, base.threads(t));
                let mut fast = engine.init_state(&prog);
                let mut slow = engine.init_state(&prog);
                let (rf, itf) = engine
                    .run_until_converged_vectorized(&prog, &mut fast, 16)
                    .unwrap();
                let (rs, its) = engine.run_until_converged(&prog, &mut slow, 16).unwrap();
                prop_assert_eq!(itf, its, "iteration counts t={}", t);
                prop_assert_eq!(&fast, &slow, "states t={}", t);
                prop_assert_eq!(format!("{rf:?}"), format!("{rs:?}"), "reports t={}", t);
            }
        }
    }

    #[test]
    fn bfs_fast_path_is_bit_identical(g in arb_graph(), seed in 0u64..50) {
        let mut is_source = vec![false; g.num_vertices() as usize];
        is_source[0] = true;
        let prog = BfsPropagation { is_source };
        let (c, pg) = testbed(&g, seed);
        for base in option_matrix() {
            for t in THREADS {
                let engine = PropagationEngine::new(&c, &pg, base.threads(t));
                let mut fast = engine.init_state(&prog);
                let mut slow = engine.init_state(&prog);
                let (rf, itf) = engine
                    .run_until_converged_vectorized(&prog, &mut fast, 16)
                    .unwrap();
                let (rs, its) = engine.run_until_converged(&prog, &mut slow, 16).unwrap();
                prop_assert_eq!(itf, its, "iteration counts t={}", t);
                prop_assert_eq!(&fast, &slow, "states t={}", t);
                prop_assert_eq!(format!("{rf:?}"), format!("{rs:?}"), "reports t={}", t);
            }
        }
    }

    #[test]
    fn virtual_fast_path_is_bit_identical(g in arb_graph(), seed in 0u64..50) {
        let (c, pg) = testbed(&g, seed);
        for base in option_matrix() {
            for t in THREADS {
                let engine = PropagationEngine::new(&c, &pg, base.threads(t));
                let (of, rf) = engine.run_virtual_vectorized(&DegreeVirtualTask).unwrap();
                let (os, rs) = engine.run_virtual(&DegreeVirtualTask).unwrap();
                prop_assert_eq!(&of, &os, "outputs t={}", t);
                prop_assert_eq!(format!("{rf:?}"), format!("{rs:?}"), "reports t={}", t);
            }
        }
    }
}

/// Self-loop-free sanity anchor (non-random): a concrete 12-vertex chain
/// where the expected PageRank fixpoint is easy to eyeball, run through
/// both lanes at O4 — catches harness bugs that random graphs could mask
/// by coincidence (e.g. both lanes broken the same way on empty mailboxes).
#[test]
fn chain_anchor_matches_between_lanes() {
    let g = from_edges(12, (0..11u32).map(|v| (v, v + 1)).collect::<Vec<_>>());
    let prog = PageRankPropagation { damping: 0.85, n: 12 };
    let (c, pg) = testbed(&g, 7);
    let engine = PropagationEngine::new(&c, &pg, EngineOptions::full());
    let mut fast = engine.init_state(&prog);
    let mut slow = engine.init_state(&prog);
    engine.run_vectorized(&prog, &mut fast, 5).unwrap();
    engine.run(&prog, &mut slow, 5).unwrap();
    assert_eq!(
        fast.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        slow.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
    );
    // The chain head receives nothing: exactly the base rank (spelled with
    // the same float expression the app uses, so the comparison is bit-exact).
    assert_eq!(fast[0], (1.0 - 0.85) / 12.0);
    let _ = VertexId(0); // silence unused-import lint paths on some configs
}
