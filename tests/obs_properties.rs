//! Property and determinism tests for the `surfer-obs` tracer.
//!
//! Every test here begins an [`surfer::obs::ObsSession`], so the tests in
//! this binary serialize on the session gate and never observe each
//! other's metrics. (The conformance and end-to-end suites are deliberately
//! session-free for the same reason.) Covered properties:
//!
//! * obs `exec.*` counters are *identical* to the `ExecReport` totals the
//!   simulator returns, for random graphs, topologies and thread counts
//!   (fault-free — recovery re-charges transfers);
//! * span trees are well-nested: every child interval lies inside its
//!   parent's interval and every parent id resolves;
//! * golden-trace determinism: the canonical (timing-stripped) JSON export
//!   is byte-identical run-to-run at a fixed seed, and across worker
//!   thread counts.

use proptest::prelude::*;
use surfer::apps::pagerank::{NetworkRanking, PageRankPropagation};
use surfer::cluster::{ClusterConfig, FaultPlan};
use surfer::core::{
    run_with_recovery, EngineOptions, OptimizationLevel, PropagationEngine, RecoveryConfig, Surfer,
};
use surfer::graph::generators::social::{msn_like, MsnScale};
use surfer::graph::CsrGraph;
use surfer::obs::ObsSession;

fn build(g: &CsrGraph, cluster: ClusterConfig, partitions: u32, threads: usize) -> Surfer {
    Surfer::builder(cluster.build())
        .partitions(partitions)
        .optimization(OptimizationLevel::O4)
        .threads(threads)
        .load(g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tracer and the simulator account the same execution: obs
    /// `exec.*` counters must equal the `ExecReport` totals exactly.
    #[test]
    fn exec_counters_match_exec_report(
        seed in 0u64..1_000_000,
        topo in 0u8..2,
        machines in 2u16..6,
        partitions_log2 in 0u32..5,
        threads in 1usize..4,
    ) {
        let g = msn_like(MsnScale::Tiny, seed);
        let cluster = if topo == 1 {
            // Two pods need an even machine count.
            ClusterConfig::tree(2, 1, machines & !1)
        } else {
            ClusterConfig::flat(machines)
        };
        let surfer = build(&g, cluster, 1 << partitions_log2, threads);

        for mapreduce in [false, true] {
            let session = ObsSession::begin();
            let app = NetworkRanking::new(2);
            let run = if mapreduce { surfer.run_mapreduce(&app) } else { surfer.run(&app) }.unwrap();
            let trace = session.finish();
            prop_assert_eq!(trace.counter("exec.tasks"), run.report.tasks_completed);
            prop_assert_eq!(trace.counter("exec.transfers"), run.report.transfers_completed);
            prop_assert_eq!(trace.counter("exec.net_bytes"), run.report.network_bytes);
            prop_assert_eq!(trace.counter("exec.disk_read_bytes"), run.report.disk_read_bytes);
            prop_assert_eq!(trace.counter("exec.disk_write_bytes"), run.report.disk_write_bytes);
        }
    }
}

#[test]
fn span_trees_are_well_nested() {
    let g = msn_like(MsnScale::Tiny, 7);
    let surfer = build(&g, ClusterConfig::tree(2, 1, 4), 8, 2);

    let session = ObsSession::begin();
    surfer.run(&NetworkRanking::new(3)).unwrap();
    surfer.run_mapreduce(&NetworkRanking::new(3)).unwrap();
    let trace = session.finish();

    assert!(trace.spans.len() > 20, "expected a rich span forest");
    let mut children = 0;
    for s in &trace.spans {
        assert!(s.start_ns <= s.end_ns, "span {} ends before it starts", s.name);
        if let Some(pid) = s.parent {
            let p = trace
                .span_by_id(pid)
                .unwrap_or_else(|| panic!("span {} has dangling parent id {pid}", s.name));
            assert!(
                p.start_ns <= s.start_ns && s.end_ns <= p.end_ns,
                "span {}[{}] not nested inside parent {}[{}]",
                s.name,
                s.label,
                p.name,
                p.label,
            );
            children += 1;
        }
    }
    assert!(children > 10, "expected parented spans from both engines");
}

/// One trace of the whole instrumented surface: propagation, MapReduce and
/// a checkpointed recovery run (fault-free).
fn golden_trace(threads: usize, dir_tag: &str) -> String {
    const SEED: u64 = 0x601D;
    let g = msn_like(MsnScale::Tiny, SEED);
    let surfer = build(&g, ClusterConfig::tree(2, 1, 4), 8, threads);
    let prog = PageRankPropagation { damping: 0.85, n: g.num_vertices() as u64 };

    let session = ObsSession::begin();
    surfer.run(&NetworkRanking::new(3)).unwrap();
    surfer.run_mapreduce(&NetworkRanking::new(3)).unwrap();
    let dir = std::env::temp_dir().join(format!("surfer-golden-{dir_tag}-{threads}"));
    let cfg = RecoveryConfig::new(2, &dir);
    let opts = EngineOptions::full().threads(threads);
    let engine = PropagationEngine::new(surfer.cluster(), surfer.partitioned(), opts);
    let mut state = engine.init_state(&prog);
    run_with_recovery(
        surfer.cluster(),
        surfer.partitioned(),
        opts,
        &prog,
        &mut state,
        4,
        &cfg,
        &FaultPlan::none(),
    )
    .unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    session.finish().canonical_json()
}

#[test]
fn canonical_trace_is_deterministic_and_thread_invariant() {
    let first = golden_trace(1, "a");
    assert_eq!(first, golden_trace(1, "b"), "trace not deterministic run-to-run");
    assert_eq!(first, golden_trace(2, "c"), "non-timing trace content depends on thread count");
    for key in ["prop.messages", "mr.pairs", "ckpt.writes", "fs.snapshot.write_bytes"] {
        assert!(first.contains(&format!("\"{key}\"")), "golden trace missing {key}");
    }
}
