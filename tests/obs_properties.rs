//! Property and determinism tests for the `surfer-obs` tracer.
//!
//! Every test here begins an [`surfer::obs::ObsSession`], so the tests in
//! this binary serialize on the session gate and never observe each
//! other's metrics. (The conformance and end-to-end suites are deliberately
//! session-free for the same reason.) Covered properties:
//!
//! * obs `exec.*` counters are *identical* to the `ExecReport` totals the
//!   simulator returns, for random graphs, topologies and thread counts
//!   (fault-free — recovery re-charges transfers);
//! * span trees are well-nested: every child interval lies inside its
//!   parent's interval and every parent id resolves;
//! * golden-trace determinism: the canonical (timing-stripped) JSON export
//!   is byte-identical run-to-run at a fixed seed, and across worker
//!   thread counts;
//! * flight-recorder traffic matrices: row/column sums equal the `prop.*`
//!   byte counters, the `P×P` matrix is bit-identical across worker thread
//!   counts {1, 2, max}, and the machine-pair matrix is invariant under a
//!   no-op replanner (all-alive failover through the partition store).

use proptest::prelude::*;
use surfer::apps::pagerank::{NetworkRanking, PageRankPropagation};
use surfer::cluster::{
    resolve_threads, ClusterConfig, FaultPlan, MachineId, PartitionStore, Topology,
};
use surfer::core::{
    run_with_recovery, EngineOptions, OptimizationLevel, PropagationEngine, RecoveryConfig, Surfer,
};
use surfer::graph::generators::social::{msn_like, MsnScale};
use surfer::graph::CsrGraph;
use surfer::obs::ObsSession;

fn build(g: &CsrGraph, cluster: ClusterConfig, partitions: u32, threads: usize) -> Surfer {
    Surfer::builder(cluster.build())
        .partitions(partitions)
        .optimization(OptimizationLevel::O4)
        .threads(threads)
        .load(g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tracer and the simulator account the same execution: obs
    /// `exec.*` counters must equal the `ExecReport` totals exactly.
    #[test]
    fn exec_counters_match_exec_report(
        seed in 0u64..1_000_000,
        topo in 0u8..2,
        machines in 2u16..6,
        partitions_log2 in 0u32..5,
        threads in 1usize..4,
    ) {
        let g = msn_like(MsnScale::Tiny, seed);
        let cluster = if topo == 1 {
            // Two pods need an even machine count.
            ClusterConfig::tree(2, 1, machines & !1)
        } else {
            ClusterConfig::flat(machines)
        };
        let surfer = build(&g, cluster, 1 << partitions_log2, threads);

        for mapreduce in [false, true] {
            let session = ObsSession::begin();
            let app = NetworkRanking::new(2);
            let run = if mapreduce { surfer.run_mapreduce(&app) } else { surfer.run(&app) }.unwrap();
            let trace = session.finish();
            prop_assert_eq!(trace.counter("exec.tasks"), run.report.tasks_completed);
            prop_assert_eq!(trace.counter("exec.transfers"), run.report.transfers_completed);
            prop_assert_eq!(trace.counter("exec.net_bytes"), run.report.network_bytes);
            prop_assert_eq!(trace.counter("exec.cross_pod_bytes"), run.report.cross_pod_bytes);
            prop_assert_eq!(trace.counter("exec.disk_read_bytes"), run.report.disk_read_bytes);
            prop_assert_eq!(trace.counter("exec.disk_write_bytes"), run.report.disk_write_bytes);
        }
    }

    /// The flight recorder's merged `P×P` traffic matrix accounts the same
    /// bytes as the `prop.*` counters: diagonal = local, off-diagonal =
    /// cross, row/column sums = everything.
    #[test]
    fn traffic_matrix_sums_match_prop_counters(
        seed in 0u64..1_000_000,
        partitions_log2 in 1u32..4,
        threads in 1usize..4,
    ) {
        let partitions = 1u32 << partitions_log2;
        let (trace, _) = propagation_trace(seed, partitions, threads);
        let m = trace.traffic_matrix();
        prop_assert_eq!(m.rows(), partitions as usize);
        prop_assert_eq!(m.cols(), partitions as usize);
        prop_assert_eq!(m.diagonal_total(), trace.counter("prop.local_bytes"));
        prop_assert_eq!(m.off_diagonal_total(), trace.counter("prop.cross_bytes"));
        let row_total: u64 = (0..m.rows()).map(|r| m.row_sum(r)).sum();
        let col_total: u64 = (0..m.cols()).map(|c| m.col_sum(c)).sum();
        let bytes = trace.counter("prop.local_bytes") + trace.counter("prop.cross_bytes");
        prop_assert_eq!(row_total, bytes);
        prop_assert_eq!(col_total, bytes);
    }
}

/// Machines of the traffic-matrix fixtures (a 2-pod tree).
const MATRIX_MACHINES: u16 = 4;

/// Run PageRank propagation at `threads` workers and return the trace plus
/// the placement (pid -> machine) it executed under.
fn propagation_trace(seed: u64, partitions: u32, threads: usize) -> (surfer::obs::TraceReport, Vec<u16>) {
    let g = msn_like(MsnScale::Tiny, seed);
    let surfer = build(&g, ClusterConfig::tree(2, 1, MATRIX_MACHINES), partitions, threads);
    let placement: Vec<u16> = surfer.partitioned().placement().iter().map(|m| m.0).collect();
    let session = ObsSession::begin();
    surfer.run(&NetworkRanking::new(3)).unwrap();
    (session.finish(), placement)
}

#[test]
fn traffic_matrices_are_thread_invariant_and_replanner_stable() {
    const PARTITIONS: u32 = 8;
    let runs: Vec<_> =
        [1, 2, resolve_threads(0)].iter().map(|&t| propagation_trace(0xBEEF, PARTITIONS, t)).collect();
    let (base, placement) = &runs[0];
    let m0 = base.traffic_matrix();
    assert!(!m0.is_empty(), "propagation must record traffic");
    for (trace, _) in &runs[1..] {
        assert_eq!(
            trace.traffic_matrix(),
            m0,
            "the P×P matrix must be bit-identical across worker thread counts"
        );
    }

    // The machine-pair fold is invariant under a no-op replanner: rebuild
    // the placement through the partition store's failover path with every
    // machine alive — it must hand every partition back to its primary.
    let mm = base.machine_matrix(placement, MATRIX_MACHINES as usize);
    assert_eq!(mm.total(), m0.total(), "folding must preserve total traffic");
    let topo = Topology::t1(MATRIX_MACHINES);
    let assignment: Vec<MachineId> = placement.iter().map(|&m| MachineId(m)).collect();
    let store = PartitionStore::from_assignment(&topo, &assignment);
    let alive: Vec<MachineId> = (0..MATRIX_MACHINES).map(MachineId).collect();
    let replanned: Vec<u16> = (0..PARTITIONS)
        .map(|pid| store.failover(pid, &alive).expect("machines alive").0)
        .collect();
    assert_eq!(&replanned, placement, "all-alive failover is the identity replanner");
    assert_eq!(
        base.machine_matrix(&replanned, MATRIX_MACHINES as usize),
        mm,
        "machine-pair matrix must be invariant under a no-op replanner"
    );
}

#[test]
fn span_trees_are_well_nested() {
    let g = msn_like(MsnScale::Tiny, 7);
    let surfer = build(&g, ClusterConfig::tree(2, 1, 4), 8, 2);

    let session = ObsSession::begin();
    surfer.run(&NetworkRanking::new(3)).unwrap();
    surfer.run_mapreduce(&NetworkRanking::new(3)).unwrap();
    let trace = session.finish();

    assert!(trace.spans.len() > 20, "expected a rich span forest");
    let mut children = 0;
    for s in &trace.spans {
        assert!(s.start_ns <= s.end_ns, "span {} ends before it starts", s.name);
        if let Some(pid) = s.parent {
            let p = trace
                .span_by_id(pid)
                .unwrap_or_else(|| panic!("span {} has dangling parent id {pid}", s.name));
            assert!(
                p.start_ns <= s.start_ns && s.end_ns <= p.end_ns,
                "span {}[{}] not nested inside parent {}[{}]",
                s.name,
                s.label,
                p.name,
                p.label,
            );
            children += 1;
        }
    }
    assert!(children > 10, "expected parented spans from both engines");
}

/// One trace of the whole instrumented surface: propagation, MapReduce and
/// a checkpointed recovery run (fault-free).
fn golden_trace(threads: usize, dir_tag: &str) -> String {
    const SEED: u64 = 0x601D;
    let g = msn_like(MsnScale::Tiny, SEED);
    let surfer = build(&g, ClusterConfig::tree(2, 1, 4), 8, threads);
    let prog = PageRankPropagation { damping: 0.85, n: g.num_vertices() as u64 };

    let session = ObsSession::begin();
    surfer.run(&NetworkRanking::new(3)).unwrap();
    surfer.run_mapreduce(&NetworkRanking::new(3)).unwrap();
    let dir = std::env::temp_dir().join(format!("surfer-golden-{dir_tag}-{threads}"));
    let cfg = RecoveryConfig::new(2, &dir);
    let opts = EngineOptions::full().threads(threads);
    let engine = PropagationEngine::new(surfer.cluster(), surfer.partitioned(), opts);
    let mut state = engine.init_state(&prog);
    run_with_recovery(
        surfer.cluster(),
        surfer.partitioned(),
        opts,
        &prog,
        &mut state,
        4,
        &cfg,
        &FaultPlan::none(),
    )
    .unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    session.finish().canonical_json()
}

#[test]
fn canonical_trace_is_deterministic_and_thread_invariant() {
    let first = golden_trace(1, "a");
    assert_eq!(first, golden_trace(1, "b"), "trace not deterministic run-to-run");
    assert_eq!(first, golden_trace(2, "c"), "non-timing trace content depends on thread count");
    for key in ["prop.messages", "mr.pairs", "ckpt.writes", "fs.snapshot.write_bytes"] {
        assert!(first.contains(&format!("\"{key}\"")), "golden trace missing {key}");
    }
}
