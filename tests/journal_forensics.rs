//! Flight-journal forensics: every typed failure that escapes the serving
//! layer must flush a deterministic post-mortem bundle.
//!
//! The contract under test, per scenario and per worker-thread count
//! {1, 2, max}:
//!
//! - a typed `SurferError` always leaves a bundle behind
//!   (`postmortem::take_last()` is `Some`);
//! - the bundle **attributes** the failure to the right job, tenant and
//!   iteration — including errors like `ClusterLost` that carry no
//!   iteration themselves and rely on the ambient trace context;
//! - the bundle is **schema-valid** (`postmortem::validate`);
//! - the canonical JSON is **bit-identical across thread counts** (the
//!   journal is timing-free and recorded only from coordinating threads).
//!
//! The journal ring is process-global, so every test serializes on a
//! file-local gate and resets the ring before each run.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};
use surfer::apps::pagerank::PageRankPropagation;
use surfer::cluster::{
    ClusterConfig, FaultPlan, MachineCrash, MachineId, SimCluster, SnapshotCorruption, UdfPanicAt,
};
use surfer::core::{EngineOptions, PropagationEngine, RecoveryConfig};
use surfer::graph::builder::from_edges;
use surfer::obs::postmortem::{self, PostmortemBundle};
use surfer::obs::journal;
use surfer::partition::{PartitionedGraph, Partitioning};
use surfer::serve::{JobManager, JobSpec, PropagationJob, RecoveredJob, ServeConfig, TenantId};

const ITERATIONS: u32 = 6;
const INTERVAL: u32 = 2;

/// One global journal ring per process: serialize the whole binary.
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The chaos fixture: a 12-cycle over 4 partitions on 4 flat-T1 machines.
fn fixture() -> (SimCluster, PartitionedGraph) {
    let g = from_edges(12, (0..12u32).map(|v| (v, (v + 1) % 12)).collect::<Vec<_>>());
    let p = Partitioning::new((0..12u32).map(|v| v / 3).collect(), 4);
    let placement = (0..4).map(MachineId).collect();
    let pg = PartitionedGraph::from_parts(Arc::new(g), p, placement);
    (ClusterConfig::flat(4).build(), pg)
}

fn prog() -> PageRankPropagation {
    PageRankPropagation { damping: 0.85, n: 12 }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("surfer-forensics-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run one healthy job (tenant 0) and one fault-injected checkpointed job
/// (tenant 1, zero serve retries) through the `JobManager`; return the
/// faulted job's id and the post-mortem bundle its failure flushed.
fn run_once(
    name: &str,
    threads: usize,
    plan: &FaultPlan,
    tweak: &dyn Fn(&mut RecoveryConfig),
) -> (u64, PostmortemBundle) {
    journal::reset();
    let _ = postmortem::take_last();
    let (c, pg) = fixture();
    let p = prog();
    let opts = EngineOptions::full().threads(threads);
    let mut rc = RecoveryConfig::new(INTERVAL, tmp(&format!("{name}-{threads}")));
    tweak(&mut rc);
    let mut m = JobManager::new(ServeConfig::default());
    let healthy = m
        .submit(
            JobSpec::new(TenantId(0)),
            Box::new(PropagationJob::new(
                PropagationEngine::new(&c, &pg, opts),
                &p,
                ITERATIONS,
            )),
        )
        .unwrap();
    let faulted = m
        .submit(
            JobSpec::new(TenantId(1)).retries(0),
            Box::new(RecoveredJob::new(&c, &pg, opts, &p, ITERATIONS, rc.clone(), plan.clone())),
        )
        .unwrap();
    m.run_to_completion();
    let _ = std::fs::remove_dir_all(&rc.dir);

    assert!(
        m.outcome(healthy).unwrap().result.is_ok(),
        "threads={threads}: the healthy neighbor must be untouched"
    );
    assert!(
        m.outcome(faulted).unwrap().result.is_err(),
        "threads={threads}: the faulted job must fail typed"
    );
    let bundle = postmortem::take_last()
        .expect("a typed failure must flush a post-mortem bundle");
    (faulted.0, bundle)
}

/// Drive `run_once` at every thread count and pin the full forensics
/// contract: attribution, schema validity, and bit-identical canonical
/// JSON. Returns the (first) bundle for scenario-specific assertions.
fn assert_forensics(
    name: &str,
    plan: &FaultPlan,
    tweak: &dyn Fn(&mut RecoveryConfig),
    variant: &str,
    iteration: u32,
) -> PostmortemBundle {
    let mut canonical: Option<(u64, String, PostmortemBundle)> = None;
    for threads in [1usize, 2, 0] {
        let (job, bundle) = run_once(name, threads, plan, tweak);
        assert_eq!(bundle.fault_variant, variant, "threads={threads}: wrong variant");
        assert_eq!(bundle.fault_ctx.job, job, "threads={threads}: bundle names the wrong job");
        assert_eq!(bundle.fault_ctx.tenant, 1, "threads={threads}: bundle names the wrong tenant");
        assert_eq!(
            bundle.fault_ctx.iteration, iteration,
            "threads={threads}: bundle must pin the faulted iteration"
        );
        let json = bundle.to_json();
        let problems = postmortem::validate(&json);
        assert!(problems.is_empty(), "threads={threads}: schema problems {problems:?}");
        match canonical {
            None => canonical = Some((job, json, bundle)),
            Some((job0, ref first, _)) => {
                assert_eq!(job0, job, "job ids must replay identically");
                assert_eq!(
                    *first, json,
                    "post-mortem bundle diverged at threads={threads}"
                );
            }
        }
    }
    canonical.unwrap().2
}

/// A UDF panic past the retry budget: the bundle pins the poisoned
/// iteration and ends in the typed `Error` event, with the admission and
/// iteration lanes of both tenants on record.
#[test]
fn udf_exhaustion_bundle_attributes_the_poisoned_iteration() {
    let _g = gate();
    let plan = FaultPlan {
        udf_panics: vec![UdfPanicAt { iteration: 1, vertex: 4 }],
        ..FaultPlan::none()
    };
    let bundle = assert_forensics("udf", &plan, &|rc| rc.max_udf_retries = 0, "RetriesExhausted", 1);
    assert!(!bundle.events.is_empty(), "the bundle must carry journal events");
    assert_eq!(
        bundle.events.last().unwrap().kind.name(),
        "error",
        "the final journal event is the typed failure itself"
    );
    assert!(
        bundle.events.iter().any(|e| e.kind.name() == "admission_admit"),
        "admission decisions belong to the flight journal"
    );
    assert!(
        bundle.events.iter().any(|e| e.kind.name() == "iteration_start"),
        "iteration lanes belong to the flight journal"
    );
}

/// `ClusterLost` carries no iteration in the error value; the bundle must
/// recover the crash iteration from the ambient trace context that the
/// recovery loop stamps as it advances.
#[test]
fn cluster_lost_bundle_pins_the_crash_iteration_from_ambient_context() {
    let _g = gate();
    let plan = FaultPlan {
        crashes: (0..4).map(|m| MachineCrash { machine: MachineId(m), at_iteration: 2 }).collect(),
        ..FaultPlan::none()
    };
    let bundle = assert_forensics("cluster-lost", &plan, &|_| {}, "ClusterLost", 2);
    assert!(
        bundle.events.iter().any(|e| e.kind.name() == "machine_crash"),
        "the crashes leading up to the loss must be on record"
    );
}

/// Exhausting every snapshot replica: the bundle pins the checkpoint whose
/// restore failed and records the failovers that preceded it.
#[test]
fn replica_exhaustion_bundle_pins_the_failed_checkpoint() {
    let _g = gate();
    let plan = FaultPlan {
        crashes: vec![MachineCrash { machine: MachineId(0), at_iteration: 3 }],
        corruptions: vec![
            SnapshotCorruption { checkpoint: 2, partition: 0, replica: 1 },
            SnapshotCorruption { checkpoint: 2, partition: 0, replica: 2 },
        ],
        ..FaultPlan::none()
    };
    let bundle = assert_forensics("replicas", &plan, &|_| {}, "ReplicasExhausted", 2);
    assert!(
        bundle.events.iter().any(|e| e.kind.name() == "replica_failover"),
        "the failed failover attempts must be on record"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any poisoned (iteration, vertex) pair yields a schema-valid bundle
    /// that pins exactly that iteration, bit-identically across thread
    /// counts.
    #[test]
    fn seeded_udf_faults_yield_thread_invariant_bundles(
        it in 0u32..ITERATIONS,
        vertex in 0u32..12,
    ) {
        let _g = gate();
        let plan = FaultPlan {
            udf_panics: vec![UdfPanicAt { iteration: it, vertex }],
            ..FaultPlan::none()
        };
        let name = format!("seeded-{it}-{vertex}");
        assert_forensics(&name, &plan, &|rc| rc.max_udf_retries = 0, "RetriesExhausted", it);
    }
}
