//! Chaos acceptance tests: the end-to-end fault-tolerance path of
//! `run_with_recovery` under deterministic fault schedules. Every scenario
//! must end with vertex states bit-identical to a fault-free run — at every
//! worker-thread count — or fail with a *typed* error, never a panic.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use surfer::apps::pagerank::PageRankPropagation;
use surfer::cluster::{
    ClusterConfig, FaultPlan, MachineCrash, MachineId, SimCluster, SnapshotCorruption,
    SnapshotWriteFailure, SpillFault, SpillFaultKind, UdfPanicAt,
};
use surfer::core::{
    run_with_recovery, working_set_bytes, EngineOptions, MemoryBudget, Propagation,
    PropagationEngine, RecoveryConfig, SurferError,
};
use surfer::graph::builder::from_edges;
use surfer::partition::{PartitionedGraph, Partitioning};

const ITERATIONS: u32 = 6;
const INTERVAL: u32 = 2;

/// A 12-cycle over 4 partitions on 4 machines: every partition has
/// cross-partition edges, and flat T1 replication gives each partition three
/// distinct replica holders.
fn fixture() -> (SimCluster, PartitionedGraph) {
    let g = from_edges(12, (0..12u32).map(|v| (v, (v + 1) % 12)).collect::<Vec<_>>());
    let p = Partitioning::new((0..12u32).map(|v| v / 3).collect(), 4);
    let placement = (0..4).map(MachineId).collect();
    let pg = PartitionedGraph::from_parts(Arc::new(g), p, placement);
    (ClusterConfig::flat(4).build(), pg)
}

fn prog() -> PageRankPropagation {
    PageRankPropagation { damping: 0.85, n: 12 }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("surfer-chaos-it-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bits(s: &[f64]) -> Vec<u64> {
    s.iter().map(|x| x.to_bits()).collect()
}

/// Crash + UDF panic recover to bit-identical results at every thread count.
#[test]
fn crash_and_panic_recover_bit_identically_at_every_thread_count() {
    let (c, pg) = fixture();
    let p = prog();
    let engine = PropagationEngine::new(&c, &pg, EngineOptions::full());
    let mut baseline = engine.init_state(&p);
    engine.run(&p, &mut baseline, ITERATIONS).unwrap();

    let plan = FaultPlan {
        crashes: vec![MachineCrash { machine: MachineId(0), at_iteration: 3 }],
        udf_panics: vec![UdfPanicAt { iteration: 1, vertex: 4 }],
        ..FaultPlan::none()
    };
    for threads in [1usize, 2, 0] {
        let cfg = RecoveryConfig::new(INTERVAL, tmp(&format!("threads-{threads}")));
        let mut state = engine.init_state(&p);
        let out = run_with_recovery(
            &c,
            &pg,
            EngineOptions::full().threads(threads),
            &p,
            &mut state,
            ITERATIONS,
            &cfg,
            &plan,
        )
        .unwrap();
        assert_eq!(
            bits(&state),
            bits(&baseline),
            "threads={threads}: recovery diverged from the fault-free run"
        );
        assert_eq!(out.stats.machine_crashes, 1);
        assert!(out.stats.restores >= 1);
        assert!(out.stats.udf_retries >= 1);
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }
}

/// A corrupted snapshot copy is rejected by its checksum and the restore
/// falls over to the next replica — results still bit-identical.
#[test]
fn corrupt_snapshot_falls_back_to_next_replica() {
    let (c, pg) = fixture();
    let p = prog();
    let engine = PropagationEngine::new(&c, &pg, EngineOptions::full());
    let mut baseline = engine.init_state(&p);
    engine.run(&p, &mut baseline, ITERATIONS).unwrap();

    // Partition 0's replicas on flat T1 are [m0, m1, m2]. Kill the primary
    // and corrupt the copy on m1: the restore must skip the dead primary,
    // reject m1's copy by CRC, and serve from m2.
    let plan = FaultPlan {
        crashes: vec![MachineCrash { machine: MachineId(0), at_iteration: 3 }],
        udf_panics: vec![],
        corruptions: vec![SnapshotCorruption { checkpoint: 2, partition: 0, replica: 1 }],
        ..FaultPlan::none()
    };
    let cfg = RecoveryConfig::new(INTERVAL, tmp("corrupt-one"));
    let mut state = engine.init_state(&p);
    let out = run_with_recovery(
        &c,
        &pg,
        EngineOptions::full(),
        &p,
        &mut state,
        ITERATIONS,
        &cfg,
        &plan,
    )
    .unwrap();
    assert_eq!(bits(&state), bits(&baseline), "checksum fallback changed results");
    assert!(out.stats.corrupt_snapshots >= 1, "CRC must reject the corrupted copy");
    assert!(out.stats.replica_failovers >= 1, "restore must skip the dead primary");
    let _ = std::fs::remove_dir_all(&cfg.dir);
}

/// Exhausting every replica of a partition is a typed error, not a panic.
#[test]
fn exhausting_all_replicas_is_a_typed_error() {
    let (c, pg) = fixture();
    let p = prog();
    let engine = PropagationEngine::new(&c, &pg, EngineOptions::full());

    let plan = FaultPlan {
        crashes: vec![MachineCrash { machine: MachineId(0), at_iteration: 3 }],
        udf_panics: vec![],
        corruptions: vec![
            SnapshotCorruption { checkpoint: 2, partition: 0, replica: 1 },
            SnapshotCorruption { checkpoint: 2, partition: 0, replica: 2 },
        ],
        ..FaultPlan::none()
    };
    let cfg = RecoveryConfig::new(INTERVAL, tmp("corrupt-all"));
    let mut state = engine.init_state(&p);
    let err = run_with_recovery(
        &c,
        &pg,
        EngineOptions::full(),
        &p,
        &mut state,
        ITERATIONS,
        &cfg,
        &plan,
    )
    .unwrap_err();
    match err {
        SurferError::ReplicasExhausted { partition, iteration } => {
            assert_eq!(partition, 0);
            assert_eq!(iteration, 2, "the restore targets the last checkpoint");
        }
        other => panic!("expected ReplicasExhausted, got {other:?}"),
    }
    // Every typed failure flushes a schema-valid post-mortem bundle that
    // pins the faulted checkpoint.
    let bundle = surfer::obs::postmortem::take_last()
        .expect("a typed failure must flush a post-mortem bundle");
    assert_eq!(bundle.fault_variant, "ReplicasExhausted");
    assert_eq!(bundle.fault_ctx.iteration, 2);
    let problems = surfer::obs::postmortem::validate(&bundle.to_json());
    assert!(problems.is_empty(), "schema problems: {problems:?}");
    let _ = std::fs::remove_dir_all(&cfg.dir);
}

/// Recovery recomputes only the tail between the last checkpoint and the
/// crash point, never the whole prefix.
#[test]
fn recovery_recomputes_only_the_tail() {
    let (c, pg) = fixture();
    let p = prog();
    let engine = PropagationEngine::new(&c, &pg, EngineOptions::full());

    // Crash at iteration 5 with interval 2: last checkpoint is 4, so
    // exactly one tail iteration (4) is recomputed.
    let plan = FaultPlan {
        crashes: vec![MachineCrash { machine: MachineId(1), at_iteration: 5 }],
        udf_panics: vec![],
        ..FaultPlan::none()
    };
    let cfg = RecoveryConfig::new(INTERVAL, tmp("tail"));
    let mut state = engine.init_state(&p);
    let out = run_with_recovery(
        &c,
        &pg,
        EngineOptions::full(),
        &p,
        &mut state,
        ITERATIONS,
        &cfg,
        &plan,
    )
    .unwrap();
    assert_eq!(out.stats.tail_iterations_recomputed, 5 - 4);
    let _ = std::fs::remove_dir_all(&cfg.dir);
}

/// Transient snapshot-write failures retry with simulated backoff and leave
/// results bit-identical; the backoff shows up as pure simulated wait.
#[test]
fn transient_write_failures_retry_with_backoff_and_stay_bit_identical() {
    let (c, pg) = fixture();
    let p = prog();
    let engine = PropagationEngine::new(&c, &pg, EngineOptions::full());
    let mut baseline = engine.init_state(&p);
    engine.run(&p, &mut baseline, ITERATIONS).unwrap();

    let cfg_clean = RecoveryConfig::new(INTERVAL, tmp("hiccup-clean"));
    let mut clean_state = engine.init_state(&p);
    let clean = run_with_recovery(
        &c,
        &pg,
        EngineOptions::full(),
        &p,
        &mut clean_state,
        ITERATIONS,
        &cfg_clean,
        &FaultPlan::none(),
    )
    .unwrap();

    // Two hiccups on partition 1's checkpoint-2 snapshot, well within the
    // default budget of 3 retries — and a crash later, so the retried
    // snapshot is also what the restore reads back.
    let plan = FaultPlan {
        crashes: vec![MachineCrash { machine: MachineId(2), at_iteration: 3 }],
        write_failures: vec![SnapshotWriteFailure { checkpoint: 2, partition: 1, failures: 2 }],
        ..FaultPlan::none()
    };
    let cfg = RecoveryConfig::new(INTERVAL, tmp("hiccup"));
    let mut state = engine.init_state(&p);
    let out = run_with_recovery(
        &c,
        &pg,
        EngineOptions::full(),
        &p,
        &mut state,
        ITERATIONS,
        &cfg,
        &plan,
    )
    .unwrap();
    assert_eq!(bits(&state), bits(&baseline), "write retries changed results");
    assert_eq!(out.stats.snapshot_write_retries, 2, "both hiccups must be retried");
    // Exponential backoff: 10 ms + 20 ms of pure simulated wait beyond
    // whatever the crash recovery itself cost.
    let backoff = cfg.snapshot_retry_backoff.0 + 2 * cfg.snapshot_retry_backoff.0;
    assert!(
        out.report.response_time.0 >= clean.report.response_time.0 + backoff,
        "backoff must surface as simulated wait: faulted {:?} vs clean {:?}",
        out.report.response_time,
        clean.report.response_time
    );
    assert_eq!(clean.stats.snapshot_write_retries, 0);
    let _ = std::fs::remove_dir_all(&cfg.dir);
    let _ = std::fs::remove_dir_all(&cfg_clean.dir);
}

/// A hiccup streak longer than the retry budget surfaces as a typed
/// `RetriesExhausted`, never a panic or a silent partial checkpoint.
#[test]
fn write_retry_exhaustion_is_a_typed_error() {
    let (c, pg) = fixture();
    let p = prog();
    let engine = PropagationEngine::new(&c, &pg, EngineOptions::full());

    let plan = FaultPlan {
        write_failures: vec![SnapshotWriteFailure { checkpoint: 2, partition: 0, failures: 2 }],
        ..FaultPlan::none()
    };
    let mut cfg = RecoveryConfig::new(INTERVAL, tmp("hiccup-exhaust"));
    cfg.max_snapshot_write_retries = 1; // budget below the streak
    let mut state = engine.init_state(&p);
    let err = run_with_recovery(
        &c,
        &pg,
        EngineOptions::full(),
        &p,
        &mut state,
        ITERATIONS,
        &cfg,
        &plan,
    )
    .unwrap_err();
    match err {
        SurferError::RetriesExhausted { iteration, attempts } => {
            assert_eq!(iteration, 2, "the checkpoint-2 write is what exhausted");
            assert_eq!(attempts, 2, "budget of 1 retry = 2 attempts");
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
    let bundle = surfer::obs::postmortem::take_last()
        .expect("a typed failure must flush a post-mortem bundle");
    assert_eq!(bundle.fault_variant, "RetriesExhausted");
    assert_eq!(bundle.fault_ctx.iteration, 2, "the bundle pins the exhausted checkpoint write");
    let problems = surfer::obs::postmortem::validate(&bundle.to_json());
    assert!(problems.is_empty(), "schema problems: {problems:?}");
    let _ = std::fs::remove_dir_all(&cfg.dir);
}

/// A memory budget small enough that every iteration of the fixture job
/// runs through the out-of-core spill lane.
fn spill_budget(pg: &surfer::partition::PartitionedGraph) -> MemoryBudget {
    MemoryBudget::bytes((working_set_bytes(pg, prog().state_bytes()) / 10).max(1))
}

/// Disk faults on spill I/O — a short write and a corrupted spill block in
/// different iterations — recover cleanly under `run_with_recovery`: the
/// faulted attempt fails typed with states untouched, the retry rewrites
/// the spill files, and the final states are bit-identical to the all-in-RAM
/// fault-free run at every thread count.
#[test]
fn spill_disk_faults_recover_cleanly_and_stay_bit_identical() {
    let (c, pg) = fixture();
    let p = prog();
    let engine = PropagationEngine::new(&c, &pg, EngineOptions::full());
    let mut baseline = engine.init_state(&p);
    engine.run(&p, &mut baseline, ITERATIONS).unwrap();

    let plan = FaultPlan {
        spill_faults: vec![
            SpillFault { iteration: 1, partition: 2, kind: SpillFaultKind::ShortWrite },
            SpillFault { iteration: 3, partition: 0, kind: SpillFaultKind::CorruptEdgeBlock },
            SpillFault { iteration: 4, partition: 3, kind: SpillFaultKind::CorruptFrame },
        ],
        ..FaultPlan::none()
    };
    for threads in [1usize, 2, 0] {
        let opts = EngineOptions::full().threads(threads).memory_budget(spill_budget(&pg));
        let cfg = RecoveryConfig::new(INTERVAL, tmp(&format!("spill-{threads}")));
        let mut state = engine.init_state(&p);
        let out =
            run_with_recovery(&c, &pg, opts, &p, &mut state, ITERATIONS, &cfg, &plan).unwrap();
        assert_eq!(
            bits(&state),
            bits(&baseline),
            "threads={threads}: spill-fault recovery diverged from the in-memory run"
        );
        assert_eq!(out.stats.spill_retries, 3, "each faulted iteration retries exactly once");
        assert_eq!(out.stats.restores, 0, "spill faults never roll back to a checkpoint");
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }
}

/// A corrupt spill block mid-run surfaces as a typed `Storage` error from the
/// engine with *every* partition's state untouched (writeback is deferred
/// until all workers succeed), and a plain re-run of the same iteration
/// matches the fault-free result bit-for-bit.
#[test]
fn corrupt_spill_block_is_typed_and_leaves_all_partitions_untouched() {
    let (c, pg) = fixture();
    let p = prog();
    let clean = PropagationEngine::new(&c, &pg, EngineOptions::full());
    let mut expect = clean.init_state(&p);
    clean.run_iteration(&p, &mut expect).unwrap();

    let spilling =
        PropagationEngine::new(&c, &pg, EngineOptions::full().memory_budget(spill_budget(&pg)));
    for kind in
        [SpillFaultKind::ShortWrite, SpillFaultKind::CorruptFrame, SpillFaultKind::CorruptEdgeBlock]
    {
        let mut state = spilling.init_state(&p);
        let before = bits(&state);
        let fault = SpillFault { iteration: 0, partition: 1, kind };
        let err = spilling
            .run_iteration_with_spill_faults(&p, &mut state, &[fault])
            .unwrap_err();
        assert!(
            matches!(err, SurferError::Storage(_)),
            "{kind:?}: expected a typed Storage error, got {err:?}"
        );
        assert_eq!(bits(&state), before, "{kind:?}: a failed iteration must not touch state");
        // The engine dropped its damaged spill files; the retry rewrites
        // them and lands on the in-memory result exactly.
        spilling.run_iteration(&p, &mut state).unwrap();
        assert_eq!(bits(&state), bits(&expect), "{kind:?}: retry diverged from in-memory");
    }
}

/// Spill faults compose with the rest of the chaos schedule: a machine crash,
/// a UDF panic, and spill-I/O damage in one job still converge bit-identically.
#[test]
fn spill_faults_compose_with_crashes_and_udf_panics() {
    let (c, pg) = fixture();
    let p = prog();
    let engine = PropagationEngine::new(&c, &pg, EngineOptions::full());
    let mut baseline = engine.init_state(&p);
    engine.run(&p, &mut baseline, ITERATIONS).unwrap();

    let plan = FaultPlan {
        crashes: vec![MachineCrash { machine: MachineId(3), at_iteration: 4 }],
        udf_panics: vec![UdfPanicAt { iteration: 2, vertex: 7 }],
        spill_faults: vec![SpillFault {
            iteration: 1,
            partition: 3,
            kind: SpillFaultKind::CorruptFrame,
        }],
        ..FaultPlan::none()
    };
    let opts = EngineOptions::full().memory_budget(spill_budget(&pg));
    let cfg = RecoveryConfig::new(INTERVAL, tmp("spill-compose"));
    let mut state = engine.init_state(&p);
    let out = run_with_recovery(&c, &pg, opts, &p, &mut state, ITERATIONS, &cfg, &plan).unwrap();
    assert_eq!(bits(&state), bits(&baseline), "composed chaos diverged from fault-free");
    assert_eq!(out.stats.spill_retries, 1);
    assert_eq!(out.stats.machine_crashes, 1);
    assert!(out.stats.udf_retries >= 1);
    let _ = std::fs::remove_dir_all(&cfg.dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Seeded chaos: any survivable random fault plan ends bit-identical to
    /// the fault-free run, and the same seed reproduces the exact same
    /// execution report.
    #[test]
    fn seeded_fault_plans_are_deterministic_and_recoverable(seed in 0u64..500) {
        let (c, pg) = fixture();
        let p = prog();
        let engine = PropagationEngine::new(&c, &pg, EngineOptions::full());
        let mut baseline = engine.init_state(&p);
        engine.run(&p, &mut baseline, ITERATIONS).unwrap();

        let plan = FaultPlan::random(seed, 4, ITERATIONS, 4, 12);
        let mut reports = Vec::new();
        for rep in 0..2 {
            let cfg = RecoveryConfig::new(INTERVAL, tmp(&format!("seed-{seed}-{rep}")));
            let mut state = engine.init_state(&p);
            let out = run_with_recovery(
                &c,
                &pg,
                EngineOptions::full(),
                &p,
                &mut state,
                ITERATIONS,
                &cfg,
                &plan,
            )
            .unwrap();
            prop_assert_eq!(
                bits(&state),
                bits(&baseline),
                "seed {}: chaos run diverged from fault-free",
                seed
            );
            reports.push((format!("{:?}", out.report), out.stats));
            let _ = std::fs::remove_dir_all(&cfg.dir);
        }
        prop_assert_eq!(&reports[0].0, &reports[1].0, "same seed must replay the same report");
        prop_assert_eq!(&reports[0].1, &reports[1].1, "same seed must replay the same stats");
    }

    /// The same seeded chaos schedules stay bit-identical when the whole job
    /// runs out-of-core under a heavy-spill memory budget.
    #[test]
    fn seeded_fault_plans_recover_identically_when_spilling(seed in 0u64..200) {
        let (c, pg) = fixture();
        let p = prog();
        let engine = PropagationEngine::new(&c, &pg, EngineOptions::full());
        let mut baseline = engine.init_state(&p);
        engine.run(&p, &mut baseline, ITERATIONS).unwrap();

        let plan = FaultPlan::random(seed, 4, ITERATIONS, 4, 12);
        let opts = EngineOptions::full().memory_budget(spill_budget(&pg));
        let cfg = RecoveryConfig::new(INTERVAL, tmp(&format!("spill-seed-{seed}")));
        let mut state = engine.init_state(&p);
        run_with_recovery(&c, &pg, opts, &p, &mut state, ITERATIONS, &cfg, &plan).unwrap();
        prop_assert_eq!(
            bits(&state),
            bits(&baseline),
            "seed {}: spilled chaos run diverged from the in-memory fault-free run",
            seed
        );
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }
}
