//! Differential conformance: every application in `crates/apps` through
//! every execution mode the repo implements, checked against its serial
//! reference and against itself across worker-thread counts.
//!
//! For each app the harness runs:
//!
//! * **propagation** at every optimization level O1–O4,
//! * **MapReduce**,
//!
//! each at worker-thread counts {1, 2, max}, asserting (a) agreement with
//! the serial reference and (b) *bit-identical* outputs across thread
//! counts within a mode (compared via `Debug` formatting, which renders
//! every f64 bit-exactly). Separate tests push the PageRank propagation
//! program through cascaded execution and the fault-free recovery path and
//! require bit-identical final vertex states against the plain engine.
//!
//! Optimization levels and MapReduce may legitimately differ from each
//! other in the last float bits (local combination regroups f64 sums), so
//! cross-mode agreement uses each app's `ExactOutput` tolerance instead.

use std::fmt::Debug;
use surfer::apps::pagerank::PageRankPropagation;
use surfer::apps::{
    BreadthFirstSearch, ConnectedComponents, ExactOutput, NetworkRanking, RecommenderSystem,
    ReverseLinkGraph, TriangleCounting, TwoHopFriends, VertexDegreeDistribution,
};
use surfer::cluster::{resolve_threads, ClusterConfig, FaultPlan};
use surfer::core::{
    run_cascaded, run_with_recovery, EngineOptions, OptimizationLevel, PropagationEngine,
    RecoveryConfig, Surfer, SurferApp,
};
use surfer::graph::generators::social::{msn_like, MsnScale};
use surfer::graph::{CsrGraph, VertexId};

const SEED: u64 = 0xE2E;
const PARTITIONS: u32 = 8;

/// Thread knobs to sweep, deduplicated by what they resolve to on this host
/// (on a single-core runner `0` resolves to 1 and is dropped).
fn thread_sweep() -> Vec<usize> {
    let mut resolved = Vec::new();
    let mut sweep = Vec::new();
    for t in [1usize, 2, 0] {
        let r = resolve_threads(t);
        if !resolved.contains(&r) {
            resolved.push(r);
            sweep.push(t);
        }
    }
    sweep
}

fn graph() -> CsrGraph {
    msn_like(MsnScale::Tiny, SEED)
}

fn build(g: &CsrGraph, level: OptimizationLevel, threads: usize) -> Surfer {
    let cluster = ClusterConfig::tree(2, 1, 8).build();
    Surfer::builder(cluster)
        .partitions(PARTITIONS)
        .optimization(level)
        .threads(threads)
        .load(g)
}

/// The differential harness: propagation O1–O4 and MapReduce, each across
/// the thread sweep, against `reference` within the given tolerances
/// (`0.0` for exact apps — their `ExactOutput` ignores eps).
fn conform<A>(g: &CsrGraph, app: &A, reference: &A::Output, prop_eps: f64, mr_eps: f64)
where
    A: SurferApp,
    A::Output: ExactOutput + Debug,
{
    let sweep = thread_sweep();
    for level in OptimizationLevel::ALL {
        let mut rendered: Vec<String> = Vec::new();
        for &t in &sweep {
            let run = build(g, level, t).run(app).expect("propagation run");
            assert!(
                run.output.approx_eq(reference, prop_eps),
                "{} diverged from reference at {level:?} threads={t}",
                app.name(),
            );
            rendered.push(format!("{:?}", run.output));
        }
        for r in &rendered[1..] {
            assert_eq!(r, &rendered[0], "{} not thread-invariant at {level:?}", app.name());
        }
    }
    let mut rendered: Vec<String> = Vec::new();
    for &t in &sweep {
        let run = build(g, OptimizationLevel::O4, t).run_mapreduce(app).expect("mapreduce run");
        assert!(
            run.output.approx_eq(reference, mr_eps),
            "{} MapReduce diverged from reference at threads={t}",
            app.name(),
        );
        rendered.push(format!("{:?}", run.output));
    }
    for r in &rendered[1..] {
        assert_eq!(r, &rendered[0], "{} MapReduce not thread-invariant", app.name());
    }
}

#[test]
fn network_ranking_conforms() {
    let g = graph();
    let app = NetworkRanking::new(4);
    let reference = app.reference(&g);
    conform(&g, &app, &reference, 1e-12, 1e-9);
}

#[test]
fn recommender_conforms() {
    let g = graph();
    let app = RecommenderSystem::new(4, SEED);
    let reference = app.reference(&g);
    assert!(reference.count() > 0, "campaign should spread");
    conform(&g, &app, &reference, 0.0, 0.0);
}

#[test]
fn triangle_counting_conforms() {
    let g = graph();
    let app = TriangleCounting::new(SEED);
    let reference = app.reference(&g);
    assert!(reference.triangles > 0, "sample found no triangles");
    conform(&g, &app, &reference, 0.0, 0.0);
}

#[test]
fn degree_distribution_conforms() {
    let g = graph();
    let reference = VertexDegreeDistribution.reference(&g);
    conform(&g, &VertexDegreeDistribution, &reference, 0.0, 0.0);
}

#[test]
fn reverse_link_graph_conforms() {
    let g = graph();
    let reference = ReverseLinkGraph.reference(&g);
    conform(&g, &ReverseLinkGraph, &reference, 0.0, 0.0);
}

#[test]
fn two_hop_friends_conforms() {
    let g = graph();
    let app = TwoHopFriends::new(SEED);
    let reference = app.reference(&g);
    conform(&g, &app, &reference, 0.0, 0.0);
}

#[test]
fn connected_components_conforms() {
    // CC needs bidirectional message flow: symmetrize first.
    let g = graph().symmetrize();
    let app = ConnectedComponents::new();
    let reference = app.reference(&g);
    conform(&g, &app, &reference, 0.0, 0.0);
}

#[test]
fn breadth_first_search_conforms() {
    let g = graph();
    let app = BreadthFirstSearch::from_source(VertexId(0));
    let reference = app.reference(&g);
    conform(&g, &app, &reference, 0.0, 0.0);
}

/// Cascaded execution and the (fault-free) recovery path are pure execution
/// strategies: both must leave the *bit-identical* vertex states the plain
/// engine computes, at every thread count.
#[test]
fn cascaded_and_recovery_match_plain_engine_bit_exactly() {
    const ITERATIONS: u32 = 4;
    let g = graph();
    let prog = PageRankPropagation { damping: 0.85, n: g.num_vertices() as u64 };
    let bits = |s: &[f64]| s.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    for &t in &thread_sweep() {
        let s = build(&g, OptimizationLevel::O4, t);
        let (cluster, pg) = (s.cluster(), s.partitioned());
        let opts = EngineOptions::full().threads(t);
        let engine = PropagationEngine::new(cluster, pg, opts);

        let mut plain = engine.init_state(&prog);
        engine.run(&prog, &mut plain, ITERATIONS).expect("plain run");

        let mut cascaded = engine.init_state(&prog);
        run_cascaded(&engine, &prog, &mut cascaded, ITERATIONS).expect("cascaded run");
        assert_eq!(bits(&plain), bits(&cascaded), "cascaded diverged at threads={t}");

        let dir = std::env::temp_dir().join(format!("surfer-conformance-{SEED}-{t}"));
        let cfg = RecoveryConfig::new(2, &dir);
        let mut recovered = engine.init_state(&prog);
        run_with_recovery(
            cluster,
            pg,
            opts,
            &prog,
            &mut recovered,
            ITERATIONS,
            &cfg,
            &FaultPlan::none(),
        )
        .expect("fault-free recovery run");
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(bits(&plain), bits(&recovered), "recovery path diverged at threads={t}");
    }
}

/// Kernel-lane conformance: the four apps migrated to the columnar fast
/// path ([`surfer::core::VectorizedProgram`] /
/// [`surfer::core::VectorizedVirtualTask`]) must produce bit-identical
/// outputs **and** `ExecReport`s whether the vectorized lane is on (the
/// default) or forced off via [`Surfer::builder`]'s `vectorized(false)` —
/// at both ends of the optimization ladder, across the thread sweep.
#[test]
fn vectorized_lane_matches_scalar_lane_bit_exactly() {
    fn lanes<A>(g: &CsrGraph, app: &A)
    where
        A: SurferApp,
        A::Output: Debug,
    {
        for level in [OptimizationLevel::O1, OptimizationLevel::O4] {
            for &t in &thread_sweep() {
                let mut rendered: Vec<String> = Vec::new();
                for on in [true, false] {
                    let cluster = ClusterConfig::tree(2, 1, 8).build();
                    let surfer = Surfer::builder(cluster)
                        .partitions(PARTITIONS)
                        .optimization(level)
                        .threads(t)
                        .vectorized(on)
                        .load(g);
                    let run = surfer.run(app).expect("lane run");
                    rendered.push(format!("{:?} | {:?}", run.output, run.report));
                }
                assert_eq!(
                    rendered[0], rendered[1],
                    "{} kernel lane diverged from scalar lane at {level:?} threads={t}",
                    app.name(),
                );
            }
        }
    }

    let g = graph();
    lanes(&g, &NetworkRanking::new(4));
    lanes(&g.symmetrize(), &ConnectedComponents::new());
    lanes(&g, &BreadthFirstSearch::from_source(VertexId(0)));
    lanes(&g, &VertexDegreeDistribution);
}
