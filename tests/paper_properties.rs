//! Integration tests of the paper's structural claims (§4.1, §5, §6) on
//! real end-to-end runs.

use std::sync::Arc;
use surfer::cluster::{ClusterConfig, Topology};
use surfer::core::{run_cascaded, EngineOptions, OptimizationLevel, PropagationEngine, Surfer};
use surfer::graph::generators::social::{msn_like, MsnScale};
use surfer::partition::{
    bandwidth_aware_partition, cut_between, quality, random_partition, BisectConfig,
    RecursivePartitioner,
};
use surfer_apps::pagerank::{NetworkRanking, PageRankPropagation};
use surfer_core::SurferApp;

const SEED: u64 = 0x9A9E4;

#[test]
fn partition_sketch_is_monotone() {
    // §4.1 monotonicity: T_i <= T_j for i <= j on a real partitioning run.
    let g = msn_like(MsnScale::Tiny, SEED);
    let kway = RecursivePartitioner::default().partition(&g, 16);
    assert!(kway.sketch.is_monotone());
    // And cuts genuinely accumulate (no degenerate all-zero sketch).
    let levels = kway.sketch.num_levels();
    assert!(kway.sketch.total_cut_at_level(levels - 1) > 0);
}

#[test]
fn partition_sketch_proximity_holds_in_aggregate() {
    // §4.1 proximity: leaves with a deeper common ancestor share more
    // cross-partition edges. Check sibling pairs vs top-split pairs.
    let g = msn_like(MsnScale::Tiny, SEED);
    let kway = RecursivePartitioner::default().partition(&g, 8);
    let p = &kway.partitioning;
    let sibling_pairs = [(0u32, 1u32), (2, 3), (4, 5), (6, 7)];
    let far_pairs = [(0u32, 4u32), (1, 5), (2, 6), (3, 7), (0, 7), (3, 4)];
    let sibling: u64 = sibling_pairs.iter().map(|&(a, b)| cut_between(&g, p, a, b)).sum();
    let far: u64 = far_pairs.iter().map(|&(a, b)| cut_between(&g, p, a, b)).sum();
    let sibling_pp = sibling as f64 / sibling_pairs.len() as f64;
    let far_pp = far as f64 / far_pairs.len() as f64;
    assert!(
        sibling_pp > 2.0 * far_pp,
        "proximity violated: sibling/pair {sibling_pp:.0} vs far/pair {far_pp:.0}"
    );
}

#[test]
fn multilevel_partitioning_crushes_random() {
    // Table 5's claim on a real run.
    let g = msn_like(MsnScale::Tiny, SEED);
    let kway = RecursivePartitioner::default().partition(&g, 16);
    let ours = quality(&g, &kway.partitioning);
    let rand = quality(&g, &random_partition(g.num_vertices(), 16, SEED));
    assert!(ours.inner_edge_ratio > 0.5, "ier {}", ours.inner_edge_ratio);
    assert!(ours.inner_edge_ratio > 5.0 * rand.inner_edge_ratio);
    // `balance` is max/mean by VERTEX count; the partitioner balances by
    // record bytes (1 + degree), so hubs legitimately skew vertex counts.
    assert!(ours.balance < 1.6, "balance {}", ours.balance);
}

#[test]
fn bandwidth_aware_layout_reduces_cross_pod_traffic() {
    // The mechanism behind Table 1 / Figure 6 on a processing run.
    let g = msn_like(MsnScale::Tiny, SEED);
    let run = |level: OptimizationLevel| {
        let cluster = ClusterConfig::tree(2, 1, 8).build();
        let s = Surfer::builder(cluster).partitions(8).optimization(level).load(&g);
        s.run(&NetworkRanking::new(2)).unwrap().report
    };
    let oblivious = run(OptimizationLevel::O3);
    let aware = run(OptimizationLevel::O4);
    assert!(
        (aware.cross_pod_bytes as f64) < 0.6 * oblivious.cross_pod_bytes as f64,
        "BA cross-pod {} !<< oblivious {}",
        aware.cross_pod_bytes,
        oblivious.cross_pod_bytes
    );
}

#[test]
fn local_optimizations_cut_traffic_and_disk() {
    // §5.1 / Tables 2-3: O1 -> O4 reduces network and disk I/O for NR.
    // Like the paper (64 partitions on 32 machines), partitions outnumber
    // machines so the bandwidth-aware layout can co-locate sketch siblings.
    let g = msn_like(MsnScale::Tiny, SEED);
    let run = |level: OptimizationLevel| {
        let cluster = ClusterConfig::flat(8).build();
        let s = Surfer::builder(cluster).partitions(16).optimization(level).load(&g);
        s.run(&NetworkRanking::new(2)).unwrap().report
    };
    let o1 = run(OptimizationLevel::O1);
    let o4 = run(OptimizationLevel::O4);
    assert!(
        (o4.network_bytes as f64) < 0.7 * o1.network_bytes as f64,
        "network: O4 {} vs O1 {}",
        o4.network_bytes,
        o1.network_bytes
    );
    assert!(
        (o4.disk_bytes() as f64) < 0.7 * o1.disk_bytes() as f64,
        "disk: O4 {} vs O1 {}",
        o4.disk_bytes(),
        o1.disk_bytes()
    );
}

#[test]
fn cascaded_propagation_saves_disk_with_exact_results() {
    // §5.2 on a real multi-iteration NR run.
    let g = Arc::new(msn_like(MsnScale::Tiny, SEED));
    let cluster = ClusterConfig::flat(4).build();
    let placed = bandwidth_aware_partition(
        &g,
        cluster.topology(),
        4,
        &BisectConfig::default(),
    );
    let pg = surfer::partition::PartitionedGraph::new(Arc::clone(&g), &placed);
    let engine = PropagationEngine::new(&cluster, &pg, EngineOptions::full());
    let prog = PageRankPropagation { damping: 0.85, n: g.num_vertices() as u64 };

    let mut s_naive = engine.init_state(&prog);
    let naive = engine.run(&prog, &mut s_naive, 4).unwrap();
    let mut s_casc = engine.init_state(&prog);
    let (casc, analysis) = run_cascaded(&engine, &prog, &mut s_casc, 4).unwrap();

    assert_eq!(s_naive, s_casc);
    assert_eq!(casc.network_bytes, naive.network_bytes);
    assert!(casc.disk_bytes() <= naive.disk_bytes());
    assert!(analysis.d_min >= 1);
    // The analysis sums to sane ratios.
    assert!(analysis.v_k_ratio(1) <= 1.0 && analysis.v_k_ratio(2) <= analysis.v_k_ratio(1));
}

#[test]
fn propagation_beats_mapreduce_on_edge_oriented_work() {
    // §6.4 headline on a real run through the facade.
    let g = msn_like(MsnScale::Tiny, SEED);
    let cluster = ClusterConfig::flat(8).build();
    let s = Surfer::builder(cluster).partitions(8).load(&g);
    let app = NetworkRanking::new(2);
    let prop = s.run(&app).unwrap();
    let mr = s.run_mapreduce(&app).unwrap();
    assert!(prop.report.network_bytes < mr.report.network_bytes);
}

#[test]
fn machine_graph_matches_topology_bandwidths() {
    // §4.2: the machine graph is the calibrated pair-bandwidth matrix.
    for topo in [Topology::t1(4), Topology::t2(2, 1, 4), Topology::t3(4, SEED)] {
        let mg = topo.machine_graph();
        for (i, row) in mg.iter().enumerate() {
            for (j, &entry) in row.iter().enumerate() {
                let f = topo.bandwidth_factor(
                    surfer::cluster::MachineId(i as u16),
                    surfer::cluster::MachineId(j as u16),
                );
                assert_eq!(entry, f, "{} [{i}][{j}]", topo.name());
            }
        }
    }
}

#[test]
fn app_trait_names_are_stable() {
    // The SurferApp names drive the reproduction tables.
    let g = msn_like(MsnScale::Tiny, SEED);
    let cluster = ClusterConfig::flat(2).build();
    let s = Surfer::builder(cluster).partitions(2).load(&g);
    let _ = s; // names are static, no run needed
    assert_eq!(NetworkRanking::new(1).name(), "NR");
}
