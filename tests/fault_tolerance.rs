//! Integration tests of the fault-tolerance path (App. B, Figure 10):
//! machine failures during propagation are detected by heartbeat, tasks are
//! re-planned onto replica holders, and application results never change.

use surfer::apps::pagerank::PageRankPropagation;
use surfer::cluster::{ClusterConfig, Fault, SimTime, Topology};
use surfer::core::{OptimizationLevel, Surfer};
use surfer::graph::generators::social::{msn_like, MsnScale};

const SEED: u64 = 0xFA17;

fn fixture(machines: u16) -> Surfer {
    let g = msn_like(MsnScale::Tiny, SEED);
    let cluster = ClusterConfig::new(Topology::t1(machines)).build();
    Surfer::builder(cluster).partitions(8).optimization(OptimizationLevel::O4).load(&g)
}

#[test]
fn single_failure_recovers_with_identical_results() {
    let s = fixture(8);
    let engine = s.propagation();
    let n = s.partitioned().graph().num_vertices() as u64;
    let prog = PageRankPropagation { damping: 0.85, n };

    let mut clean = engine.init_state(&prog);
    let normal = engine.run_iteration(&prog, &mut clean).unwrap();

    let victim = s.partitioned().machine_of(0);
    let kill_at = SimTime::from_secs_f64(normal.response_time.as_secs_f64() * 0.4);
    let mut faulty_state = engine.init_state(&prog);
    let faulty = engine.run_iteration_with_faults(
        &prog,
        &mut faulty_state,
        &[Fault { machine: victim, at: kill_at }],
    )
    .unwrap();

    assert_eq!(clean, faulty_state, "recovery changed application results");
    assert!(faulty.tasks_recovered > 0);
    assert!(faulty.response_time > normal.response_time);
    assert!(faulty.tasks_completed >= normal.tasks_completed);
}

#[test]
fn failure_before_start_just_relocates_work() {
    let s = fixture(4);
    let engine = s.propagation();
    let n = s.partitioned().graph().num_vertices() as u64;
    let prog = PageRankPropagation { damping: 0.85, n };

    let victim = s.partitioned().machine_of(1);
    let mut state = engine.init_state(&prog);
    let report = engine.run_iteration_with_faults(
        &prog,
        &mut state,
        &[Fault { machine: victim, at: SimTime::ZERO }],
    )
    .unwrap();
    assert!(report.tasks_recovered >= 2, "transfer+combine of the victim's partitions move");
    // Dead machine does no work after t=0 (it never started anything).
    assert_eq!(report.machine_busy[victim.index()].0, 0);
}

#[test]
fn two_failures_still_complete() {
    let s = fixture(8);
    let engine = s.propagation();
    let n = s.partitioned().graph().num_vertices() as u64;
    let prog = PageRankPropagation { damping: 0.85, n };

    let mut clean = engine.init_state(&prog);
    engine.run_iteration(&prog, &mut clean).unwrap();

    let normal_secs = {
        let mut st = engine.init_state(&prog);
        engine.run_iteration(&prog, &mut st).unwrap().response_time.as_secs_f64()
    };
    let m1 = s.partitioned().machine_of(0);
    let m2 = s.partitioned().machine_of(4);
    assert_ne!(m1, m2, "fixture should spread partitions");
    let mut state = engine.init_state(&prog);
    let report = engine.run_iteration_with_faults(
        &prog,
        &mut state,
        &[
            Fault { machine: m1, at: SimTime::from_secs_f64(normal_secs * 0.2) },
            Fault { machine: m2, at: SimTime::from_secs_f64(normal_secs * 0.5) },
        ],
    )
    .unwrap();
    assert_eq!(clean, state);
    assert!(report.tasks_recovered >= 2);
}

#[test]
fn recovery_reads_replicas_not_the_dead_machine() {
    // After the failure is detected, no new work lands on the dead machine.
    let s = fixture(8);
    let engine = s.propagation();
    let n = s.partitioned().graph().num_vertices() as u64;
    let prog = PageRankPropagation { damping: 0.85, n };
    let victim = s.partitioned().machine_of(0);
    let mut state = engine.init_state(&prog);
    let report = engine.run_iteration_with_faults(
        &prog,
        &mut state,
        &[Fault { machine: victim, at: SimTime::ZERO }],
    )
    .unwrap();
    assert_eq!(
        report.machine_busy[victim.index()].0, 0,
        "dead machine must not execute tasks"
    );
}

#[test]
fn heartbeat_delay_shows_up_in_response_time() {
    let g = msn_like(MsnScale::Tiny, SEED);
    let run_with_heartbeat = |hb: f64| {
        let cluster = ClusterConfig::flat(4)
            .heartbeat_interval(surfer::cluster::SimDuration::from_secs_f64(hb))
            .build();
        let s = Surfer::builder(cluster).partitions(4).load(&g);
        let engine = s.propagation();
        let prog = PageRankPropagation { damping: 0.85, n: g.num_vertices() as u64 };
        let mut state = engine.init_state(&prog);
        let victim = s.partitioned().machine_of(0);
        engine
            .run_iteration_with_faults(
                &prog,
                &mut state,
                &[Fault { machine: victim, at: SimTime::ZERO }],
            )
            .unwrap()
            .response_time
            .as_secs_f64()
    };
    let fast = run_with_heartbeat(0.5);
    let slow = run_with_heartbeat(10.0);
    assert!(slow > fast + 9.0, "heartbeat delay should dominate: {fast} vs {slow}");
}
