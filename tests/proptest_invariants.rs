//! Property-based integration tests over the whole stack: random graphs and
//! random configurations must preserve the core invariants — codecs
//! round-trip, partitionings are total and disjoint, the contiguous
//! encoding is a bijection, engines agree with serial references, and the
//! simulator is deterministic.

use proptest::prelude::*;
use std::sync::Arc;
use surfer::apps::pagerank::NetworkRanking;
use surfer::apps::ExactOutput;
use surfer::cluster::{ClusterConfig, MachineId};
use surfer::core::{EngineOptions, PropagationEngine, Surfer, SurferApp};
use surfer::graph::{adjacency, builder::from_edges, CsrGraph, GraphBuilder, VertexId};
use surfer::partition::{
    quality, random_partition, Partitioning, PartitionedGraph, RecursivePartitioner,
    VertexEncoding,
};

/// Strategy: a random directed graph with 2..=40 vertices.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (2u32..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..200)
            .prop_map(move |edges| from_edges(n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn adjacency_codec_roundtrips(g in arb_graph()) {
        let blob = adjacency::encode_graph(&g);
        prop_assert_eq!(blob.len() as u64, g.storage_bytes());
        let back = adjacency::decode_graph(&blob).unwrap();
        prop_assert_eq!(back, g);
    }

    #[test]
    fn transpose_is_an_involution(g in arb_graph()) {
        prop_assert_eq!(g.transpose().transpose(), g.clone());
        prop_assert_eq!(g.transpose().num_edges(), g.num_edges());
    }

    #[test]
    fn degree_sums_match_edge_count(g in arb_graph()) {
        let out: u64 = g.vertices().map(|v| g.out_degree(v) as u64).sum();
        let inn: u64 = g.in_degrees().iter().map(|&d| d as u64).sum();
        prop_assert_eq!(out, g.num_edges());
        prop_assert_eq!(inn, g.num_edges());
    }

    #[test]
    fn builder_dedup_is_idempotent(g in arb_graph()) {
        let mut b = GraphBuilder::new(g.num_vertices());
        b.extend(g.edges());
        b.extend(g.edges()); // every edge twice
        prop_assert_eq!(b.build(), g);
    }

    #[test]
    fn partitioning_is_total_and_disjoint(g in arb_graph(), p in 1u32..5) {
        // Clamp to a power of two no larger than the vertex count.
        let cap = g.num_vertices().max(1);
        let mut p = 1u32 << p.min(2);
        while p > cap {
            p /= 2;
        }
        let kway = RecursivePartitioner::default().partition(&g, p);
        let sizes = kway.partitioning.sizes();
        prop_assert_eq!(sizes.iter().sum::<u32>(), g.num_vertices());
        // Quality metrics are internally consistent.
        let q = quality(&g, &kway.partitioning);
        prop_assert_eq!(q.inner_edges + q.cross_edges, g.num_edges());
        prop_assert!(kway.sketch.is_monotone());
    }

    #[test]
    fn vertex_encoding_is_a_bijection(n in 1u32..200, p in 1u32..8, seed in 0u64..1000) {
        let part = random_partition(n, p, seed);
        let enc = VertexEncoding::new(&part);
        let mut seen = vec![false; n as usize];
        for v in 0..n {
            let e = enc.encode(VertexId(v));
            prop_assert!(!seen[e.index()], "collision at {}", e);
            seen[e.index()] = true;
            prop_assert_eq!(enc.decode(e), VertexId(v));
            prop_assert_eq!(enc.pid_of_encoded(e), part.pid_of(VertexId(v)));
        }
    }

    #[test]
    fn propagation_pagerank_matches_reference(g in arb_graph(), seed in 0u64..100) {
        let n = g.num_vertices();
        let p = 2u32.min(n);
        let machines = 2u16;
        let part = random_partition(n, p, seed);
        let placement = (0..p).map(|i| MachineId((i % machines as u32) as u16)).collect();
        let pg = PartitionedGraph::from_parts(Arc::new(g.clone()), part, placement);
        let cluster = ClusterConfig::flat(machines).build();
        let engine = PropagationEngine::new(&cluster, &pg, EngineOptions::full());
        let app = NetworkRanking::new(2);
        let (out, _) = app.run_propagation(&engine).unwrap();
        prop_assert!(out.approx_eq(&app.reference(&g), 1e-12));
    }

    #[test]
    fn simulation_is_deterministic(g in arb_graph()) {
        let cluster = ClusterConfig::flat(3).build();
        let p = 2u32.min(g.num_vertices());
        let run = || {
            let s = Surfer::builder(cluster.clone()).partitions(p).load(&g);
            let r = s.run(&NetworkRanking::new(2)).unwrap();
            (r.report.response_time, r.report.network_bytes, r.report.disk_read_bytes)
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn partition_metadata_is_consistent(g in arb_graph(), seed in 0u64..50) {
        let n = g.num_vertices();
        let p = 3u32.min(n);
        let part = random_partition(n, p, seed);
        let placement = (0..p).map(|i| MachineId(i as u16 % 2)).collect();
        let pg = PartitionedGraph::from_parts(Arc::new(g.clone()), Partitioning::new(part.as_slice().to_vec(), p), placement);
        let mut total_edges = 0u64;
        let mut inner = 0u64;
        for pid in pg.partitions() {
            let m = pg.meta(pid);
            total_edges += m.total_out_edges;
            inner += m.inner_edges;
            // Every boundary vertex has a cross edge in some direction;
            // every member is either inner or boundary.
            for &v in &m.members {
                prop_assert_eq!(pg.is_inner(v), !m.boundary.contains(&v));
            }
        }
        prop_assert_eq!(total_edges, g.num_edges());
        let cross: u64 = g.num_edges() - inner;
        let q = quality(&g, pg.partitioning());
        prop_assert_eq!(cross, q.cross_edges);
    }
}
