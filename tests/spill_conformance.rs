//! Differential spill conformance: every application through the
//! out-of-core lane, checked bit-for-bit against the all-in-RAM engine.
//!
//! For each of the eight conformance apps the harness runs budgets
//! {unlimited, ~¼ of the working set, ~1/10 of the working set} at
//! worker-thread counts {1, 2, max} and requires the rendered output **and
//! `ExecReport`** to equal the unlimited single-thread reference exactly
//! (`Debug` formatting renders every f64 bit-exactly). A separate test
//! drives a working set ≥ 10× the budget under an obs session and requires
//! nonzero `spill.bytes_spilled` / `spill.bytes_reread` in the flight
//! recorder — proof the conformance runs actually exercised the spill
//! path. Property tests sweep random graphs × random budgets, and push
//! damage through the spill-frame and edge-block codecs expecting typed
//! errors, never panics.

use proptest::prelude::*;
use std::fmt::Debug;
use surfer::apps::{
    BreadthFirstSearch, ConnectedComponents, NetworkRanking, RecommenderSystem, ReverseLinkGraph,
    TriangleCounting, TwoHopFriends, VertexDegreeDistribution,
};
use surfer::cluster::{resolve_threads, ClusterConfig};
use surfer::core::{working_set_bytes, MemoryBudget, OptimizationLevel, Surfer, SurferApp};
use surfer::graph::block;
use surfer::graph::generators::social::{msn_like, MsnScale};
use surfer::graph::{builder::from_edges, CsrGraph, GraphError, VertexId};
use surfer::obs::ObsSession;
use surfer::partition::store_fs::{encode_frame, FrameReader, SPILL_MAGIC};

const SEED: u64 = 0xE2E;
const PARTITIONS: u32 = 8;
/// Generic per-vertex state size for deriving budgets (the exact per-program
/// figure only shifts the working set by a few percent).
const STATE_BYTES: u64 = 16;

/// Thread knobs to sweep, deduplicated by what they resolve to on this host.
fn thread_sweep() -> Vec<usize> {
    let mut resolved = Vec::new();
    let mut sweep = Vec::new();
    for t in [1usize, 2, 0] {
        let r = resolve_threads(t);
        if !resolved.contains(&r) {
            resolved.push(r);
            sweep.push(t);
        }
    }
    sweep
}

fn graph() -> CsrGraph {
    msn_like(MsnScale::Tiny, SEED)
}

fn build(g: &CsrGraph, threads: usize, budget: MemoryBudget) -> Surfer {
    let cluster = ClusterConfig::tree(2, 1, 8).build();
    Surfer::builder(cluster)
        .partitions(PARTITIONS)
        .optimization(OptimizationLevel::O4)
        .threads(threads)
        .memory_budget(budget)
        .load(g)
}

/// The differential harness: budgets {unlimited, ws/4, ws/10} × the thread
/// sweep, every run compared bit-for-bit (output and report) against the
/// unlimited single-thread reference.
fn spill_conform<A>(g: &CsrGraph, app: &A)
where
    A: SurferApp,
    A::Output: Debug,
{
    let probe = build(g, 1, MemoryBudget::unlimited());
    let ws = working_set_bytes(probe.partitioned(), STATE_BYTES);
    let reference = {
        let run = probe.run(app).expect("reference run");
        format!("{:?} | {:?}", run.output, run.report)
    };
    for (label, budget) in [
        ("unlimited", MemoryBudget::unlimited()),
        ("ws/4", MemoryBudget::bytes(ws / 4)),
        ("ws/10", MemoryBudget::bytes(ws / 10)),
    ] {
        for &t in &thread_sweep() {
            let run = build(g, t, budget).run(app).expect("budgeted run");
            assert_eq!(
                format!("{:?} | {:?}", run.output, run.report),
                reference,
                "{} diverged from the in-memory engine at budget={label} threads={t}",
                app.name(),
            );
        }
    }
}

#[test]
fn network_ranking_spill_conforms() {
    spill_conform(&graph(), &NetworkRanking::new(4));
}

#[test]
fn recommender_spill_conforms() {
    spill_conform(&graph(), &RecommenderSystem::new(4, SEED));
}

#[test]
fn triangle_counting_spill_conforms() {
    spill_conform(&graph(), &TriangleCounting::new(SEED));
}

#[test]
fn degree_distribution_spill_conforms() {
    spill_conform(&graph(), &VertexDegreeDistribution);
}

#[test]
fn reverse_link_graph_spill_conforms() {
    spill_conform(&graph(), &ReverseLinkGraph);
}

#[test]
fn two_hop_friends_spill_conforms() {
    spill_conform(&graph(), &TwoHopFriends::new(SEED));
}

#[test]
fn connected_components_spill_conforms() {
    spill_conform(&graph().symmetrize(), &ConnectedComponents::new());
}

#[test]
fn breadth_first_search_spill_conforms() {
    spill_conform(&graph(), &BreadthFirstSearch::from_source(VertexId(0)));
}

/// A working set ≥ 10× the budget must actually spill: the flight recorder
/// shows nonzero bytes spilled and reread, and every iteration ran on the
/// out-of-core lane — while the output still matches the in-memory engine.
#[test]
fn heavy_spill_records_nonzero_spill_counters() {
    let g = graph();
    let app = NetworkRanking::new(4);
    let probe = build(&g, 1, MemoryBudget::unlimited());
    let ws = working_set_bytes(probe.partitioned(), STATE_BYTES);
    let reference = format!("{:?}", probe.run(&app).expect("reference run").output);

    let budget = ws / 10;
    assert!(ws >= 10 * budget, "working set must dwarf the budget");
    let session = ObsSession::begin();
    let run = build(&g, 0, MemoryBudget::bytes(budget)).run(&app).expect("spilled run");
    let report = session.finish();

    assert_eq!(format!("{:?}", run.output), reference);
    assert!(report.counter("spill.bytes_spilled") > 0, "nothing was spilled");
    assert!(report.counter("spill.bytes_reread") > 0, "nothing was reread");
    assert!(report.counter("spill.edge_blocks_written") > 0);
    assert!(report.counter("spill.edge_blocks_read") > 0);
    assert!(report.counter("spill.mailbox_frames_written") > 0);
    assert!(report.counter("spill.mailbox_frames_read") > 0);
    assert_eq!(report.counter("spill.iterations"), 4, "every iteration should spill");
    // Edge blocks are written once per session but reread every iteration.
    assert!(
        report.counter("spill.edge_blocks_read")
            >= 4 * report.counter("spill.edge_blocks_written")
    );
}

/// Spill byte/frame counters derive from the budget and graph alone, so the
/// recorder totals must be identical at every thread count.
#[test]
fn spill_counters_are_thread_invariant() {
    let g = graph();
    let app = NetworkRanking::new(3);
    let probe = build(&g, 1, MemoryBudget::unlimited());
    let ws = working_set_bytes(probe.partitioned(), STATE_BYTES);
    let keys = [
        "spill.bytes_spilled",
        "spill.bytes_reread",
        "spill.edge_blocks_written",
        "spill.edge_blocks_read",
        "spill.mailbox_frames_written",
        "spill.mailbox_frames_read",
        "spill.iterations",
    ];
    let mut rendered: Vec<Vec<u64>> = Vec::new();
    for &t in &thread_sweep() {
        let session = ObsSession::begin();
        build(&g, t, MemoryBudget::bytes(ws / 10)).run(&app).expect("spilled run");
        let report = session.finish();
        rendered.push(keys.iter().map(|k| report.counter(k)).collect());
    }
    for r in &rendered[1..] {
        assert_eq!(r, &rendered[0], "spill counters varied with the thread count");
    }
}

/// Strategy: a random directed graph with 2..=40 vertices.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (2u32..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..200).prop_map(move |edges| from_edges(n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random graphs × random budgets: the budgeted engine must reproduce
    /// the unlimited engine bit-for-bit, whatever spills.
    #[test]
    fn random_budgets_preserve_results(g in arb_graph(), denom in 1u64..64, seed in 0u64..100) {
        let app = NetworkRanking::new(3);
        // Largest power of two ≤ min(4, |V|).
        let cap = g.num_vertices().max(1);
        let mut parts = 4u32;
        while parts > cap {
            parts /= 2;
        }
        let mk = |budget: MemoryBudget| {
            let cluster = ClusterConfig::flat(4).build();
            Surfer::builder(cluster)
                .partitions(parts)
                .seed(seed)
                .threads(2)
                .memory_budget(budget)
                .load(&g)
        };
        let probe = mk(MemoryBudget::unlimited());
        let ws = working_set_bytes(probe.partitioned(), STATE_BYTES);
        let reference = format!("{:?}", probe.run(&app).expect("reference").output);
        let budget = (ws / denom).max(1);
        let run = mk(MemoryBudget::bytes(budget)).run(&app).expect("budgeted");
        prop_assert_eq!(format!("{:?}", run.output), reference);
    }

    /// Edge-block codecs round-trip byte-exactly on random graphs, at every
    /// block-size target.
    #[test]
    fn edge_blocks_roundtrip(g in arb_graph(), target in 1u64..4096) {
        let members: Vec<VertexId> = g.vertices().collect();
        for span in block::plan_edge_blocks(&g, &members, target) {
            let run = &members[span.start..span.end];
            let raw = block::encode_edge_block(&g, run);
            let packed = block::encode_edge_block_packed(&g, run);
            let from_raw = block::decode_edge_block(&raw).unwrap();
            let from_packed = block::decode_edge_block_packed(&packed).unwrap();
            prop_assert_eq!(&from_raw, &from_packed);
            for (rec, &v) in from_raw.iter().zip(run) {
                prop_assert_eq!(rec.id, v);
                prop_assert_eq!(&rec.neighbors[..], g.neighbors(v));
            }
        }
    }

    /// Damaging any single byte of a framed spill stream — or truncating it
    /// anywhere — yields a typed `GraphError`, never a panic, and never a
    /// silently different payload.
    #[test]
    fn frame_damage_is_typed(payloads in proptest::collection::vec(
        proptest::collection::vec(0u8..255, 0..64), 1..5),
        flip in 0usize..1_000_000,
        cut in 0usize..1_000_000)
    {
        let mut blob = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            encode_frame(&mut blob, SPILL_MAGIC, 7, i as u32, p);
        }
        // Clean read: every frame comes back byte-exact.
        let mut r = FrameReader::from_bytes(blob.clone(), SPILL_MAGIC, "test");
        for (i, p) in payloads.iter().enumerate() {
            let f = r.next_frame().unwrap().expect("frame present");
            prop_assert_eq!(f.a, 7u32);
            prop_assert_eq!(f.b, i as u32);
            prop_assert_eq!(&f.payload, p);
        }
        prop_assert!(r.next_frame().unwrap().is_none());

        // Single-byte flip: reading to the end must either hit a typed
        // error or surface visibly different frames — never the original
        // data, and never a panic. (A flip in the `a`/`b` tags decodes but
        // changes the tags; the spill replay layer rejects those.)
        let mut flipped = blob.clone();
        let fi = flip % flipped.len();
        flipped[fi] ^= 0x01;
        let mut r = FrameReader::from_bytes(flipped, SPILL_MAGIC, "test");
        let mut out = Vec::new();
        let mut corrupted = false;
        loop {
            match r.next_frame() {
                Ok(Some(f)) => out.push((f.a, f.b, f.payload)),
                Ok(None) => break,
                Err(GraphError::Corrupt(_)) => { corrupted = true; break; }
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
        let original: Vec<(u32, u32, Vec<u8>)> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| (7u32, i as u32, p.clone()))
            .collect();
        prop_assert!(
            corrupted || out != original,
            "flipped byte {fi} was silently absorbed"
        );

        // Truncation anywhere but a frame boundary is typed damage too.
        let cut_at = cut % blob.len();
        let mut r = FrameReader::from_bytes(blob[..cut_at].to_vec(), SPILL_MAGIC, "test");
        let mut saw_error = false;
        loop {
            match r.next_frame() {
                Ok(Some(_)) => continue,
                Ok(None) => break,         // cut landed exactly on a boundary
                Err(GraphError::Corrupt(_)) => { saw_error = true; break; }
                Err(e) => panic!("unexpected error {e:?}"),
            }
        }
        let mut boundary = 0usize;
        let mut boundaries = vec![0usize];
        for p in &payloads {
            boundary += surfer::partition::store_fs::FRAME_HEADER + p.len();
            boundaries.push(boundary);
        }
        prop_assert_eq!(saw_error, !boundaries.contains(&cut_at));
    }
}
