//! Explore the partitioning machinery: multilevel bisection quality, the
//! partition sketch and its §4.1 properties, bandwidth-aware placement on a
//! tree topology, and the on-disk partition store.
//!
//! ```text
//! cargo run --release --example partition_explorer
//! ```

use std::sync::Arc;
use surfer::cluster::Topology;
use surfer::graph::generators::social::{msn_like, MsnScale};
use surfer::partition::{
    bandwidth_aware_partition, cut_between, load_partitioned, quality, random_partition,
    write_partitioned, BisectConfig, PartitionedGraph, RecursivePartitioner,
};

fn main() {
    let graph = msn_like(MsnScale::Tiny, 99);
    println!("graph: {} vertices, {} edges\n", graph.num_vertices(), graph.num_edges());

    // --- Partition quality vs a random assignment (Table 5 in miniature) ---
    println!("{:<12} {:>10} {:>10}", "partitions", "ier ours", "ier random");
    for p in [4u32, 8, 16, 32] {
        let kway = RecursivePartitioner::default().partition(&graph, p);
        let ours = quality(&graph, &kway.partitioning).inner_edge_ratio;
        let rand = quality(&graph, &random_partition(graph.num_vertices(), p, 1)).inner_edge_ratio;
        println!("{p:<12} {:>9.1}% {:>9.1}%", ours * 100.0, rand * 100.0);
    }

    // --- The partition sketch and its properties (§4.1) ---
    let kway = RecursivePartitioner::default().partition(&graph, 8);
    println!("\npartition sketch ({} levels, monotone: {}):", kway.sketch.num_levels(), kway.sketch.is_monotone());
    for l in 0..kway.sketch.num_levels() {
        println!("  T_{l} (cross edges above level {l}): {}", kway.sketch.total_cut_at_level(l));
    }
    let p = &kway.partitioning;
    println!(
        "proximity: sibling pair cut C(0,1) = {}, far pair cut C(0,7) = {}",
        cut_between(&graph, p, 0, 1),
        cut_between(&graph, p, 0, 7)
    );

    // --- Bandwidth-aware placement on a 2-pod tree ---
    let topo = Topology::t2(2, 1, 8);
    let placed = bandwidth_aware_partition(&graph, &topo, 8, &BisectConfig::default());
    println!("\nbandwidth-aware placement on {}:", topo.name());
    for (pid, m) in placed.placement.iter().enumerate() {
        println!("  partition {pid} -> {m} (pod {})", topo.pod_of(*m));
    }

    // --- Round-trip through the on-disk partition store ---
    let pg = PartitionedGraph::new(Arc::new(graph), &placed);
    let dir = std::env::temp_dir().join("surfer-partition-explorer");
    let _ = std::fs::remove_dir_all(&dir);
    let manifest = write_partitioned(&dir, &pg).expect("write partition store");
    let back = load_partitioned(&dir).expect("reload partition store");
    println!(
        "\nwrote {} partitions to {} and reloaded them (identical: {})",
        manifest.partitions.len(),
        dir.display(),
        back.graph() == pg.graph() && back.placement() == pg.placement()
    );
    for pid in pg.partitions().take(3) {
        let meta = pg.meta(pid);
        println!(
            "  partition {pid}: {} vertices, {} bytes, {:.0}% inner vertices, boundary {}",
            meta.members.len(),
            meta.bytes,
            meta.inner_vertex_ratio() * 100.0,
            meta.boundary.len()
        );
    }
}
