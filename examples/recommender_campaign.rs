//! A product-recommendation campaign (the paper's RS workload): seed a few
//! users, propagate recommendations along friendships for several rounds,
//! and watch adoption spread.
//!
//! ```text
//! cargo run --release --example recommender_campaign
//! ```

use surfer::apps::recommender::RecommenderSystem;
use surfer::core::OptimizationLevel;
use surfer::prelude::*;

fn main() {
    let graph = msn_like(MsnScale::Tiny, 23);
    let cluster = ClusterConfig::paper_regime(Topology::t1(8)).build();
    let surfer = Surfer::builder(cluster)
        .partitions(8)
        .optimization(OptimizationLevel::O4)
        .load(&graph);

    println!("campaign over {} users; 1% seeded, 30% acceptance\n", graph.num_vertices());
    println!("{:>6} {:>9} {:>10} {:>12}", "rounds", "adopters", "adoption%", "network(MB)");
    for rounds in 0..=5 {
        let mut campaign = RecommenderSystem::new(rounds, 777);
        campaign.accept_probability = 0.3;
        let run = surfer.run(&campaign).unwrap();
        println!(
            "{rounds:>6} {:>9} {:>9.1}% {:>12.2}",
            run.output.count(),
            run.output.count() as f64 / graph.num_vertices() as f64 * 100.0,
            run.report.network_bytes as f64 / 1e6,
        );
    }

    // How much does the acceptance probability matter?
    println!("\nacceptance sweep at 5 rounds:");
    for p in [0.1, 0.3, 0.5, 0.9] {
        let mut campaign = RecommenderSystem::new(5, 777);
        campaign.accept_probability = p;
        let run = surfer.run(&campaign).unwrap();
        println!(
            "  p = {:.1}: {} adopters ({:.1}%)",
            p,
            run.output.count(),
            run.output.count() as f64 / graph.num_vertices() as f64 * 100.0
        );
    }
}
