//! Friend-of-friend suggestions: the TFL workload that motivates the paper's
//! introduction ("compute the two-hop friend list for each account in the
//! MSN social network") — the task whose MapReduce implementation drowns in
//! shuffle traffic and whose propagation implementation doesn't.
//!
//! ```text
//! cargo run --release --example two_hop_friends
//! ```

use surfer::core::OptimizationLevel;
use surfer::prelude::*;

fn main() {
    let graph = msn_like(MsnScale::Tiny, 11);
    let cluster = ClusterConfig::paper_regime(Topology::t2(2, 1, 8)).build();
    let surfer = Surfer::builder(cluster)
        .partitions(8)
        .optimization(OptimizationLevel::O4)
        .load(&graph);

    // 10% of accounts push their friend lists (the paper's selection ratio).
    let app = TwoHopFriends::new(99);
    let prop = surfer.run(&app).unwrap();
    let mr = surfer.run_mapreduce(&app).unwrap();

    println!(
        "two-hop lists for {} accounts ({} candidate pairs total)",
        prop.output.lists.iter().filter(|l| !l.is_empty()).count(),
        prop.output.total_pairs()
    );
    println!(
        "network traffic — propagation: {:.1} MB, MapReduce: {:.1} MB ({:.0}% saved)",
        prop.report.network_bytes as f64 / 1e6,
        mr.report.network_bytes as f64 / 1e6,
        (1.0 - prop.report.network_bytes as f64 / mr.report.network_bytes as f64) * 100.0
    );
    println!(
        "response time — propagation: {:.2}s, MapReduce: {:.2}s",
        prop.report.response_time.as_secs_f64(),
        mr.report.response_time.as_secs_f64()
    );

    // Suggest friends for the best-connected account that received lists.
    let (account, suggestions) = prop
        .output
        .lists
        .iter()
        .enumerate()
        .max_by_key(|(_, l)| l.len())
        .expect("non-empty graph");
    let direct: std::collections::HashSet<u32> =
        graph.neighbors(VertexId(account as u32)).iter().map(|v| v.0).collect();
    let new_people: Vec<u32> = suggestions
        .iter()
        .copied()
        .filter(|s| !direct.contains(s) && *s != account as u32)
        .take(10)
        .collect();
    println!(
        "\naccount v{account} has {} direct friends; top two-hop suggestions: {new_people:?}",
        direct.len()
    );
}
