//! Social-network ranking, the paper's §6.4 comparison in miniature:
//! the same PageRank job through MapReduce and through propagation, at each
//! optimization level, on an uneven tree topology.
//!
//! ```text
//! cargo run --release --example social_ranking
//! ```

use surfer::core::OptimizationLevel;
use surfer::prelude::*;

fn main() {
    let graph = msn_like(MsnScale::Tiny, 7);
    let app = NetworkRanking::new(3);
    println!(
        "ranking {} vertices / {} edges on a 2-pod tree cluster\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    println!("{:<6} {:>12} {:>14} {:>12}", "level", "response(s)", "machine-time(s)", "network(MB)");
    let mut baseline = None;
    for level in OptimizationLevel::ALL {
        let cluster = ClusterConfig::paper_regime(Topology::t2(2, 1, 8)).build();
        let surfer = Surfer::builder(cluster).partitions(16).optimization(level).load(&graph);
        let run = surfer.run(&app).unwrap();
        println!(
            "{:<6} {:>12.2} {:>14.2} {:>12.1}",
            level.to_string(),
            run.report.response_time.as_secs_f64(),
            run.report.total_machine_time.as_secs_f64(),
            run.report.network_bytes as f64 / 1e6,
        );
        if level == OptimizationLevel::O1 {
            baseline = Some(run.report.response_time.as_secs_f64());
        } else if level == OptimizationLevel::O4 {
            let b = baseline.expect("O1 ran first");
            let now = run.report.response_time.as_secs_f64();
            println!("\nO1 -> O4 improvement: {:.1}%", (b - now) / b * 100.0);
        }
    }

    // The same job through the MapReduce primitive (hash shuffle, graph
    // structure ignored) for contrast.
    let cluster = ClusterConfig::paper_regime(Topology::t2(2, 1, 8)).build();
    let surfer =
        Surfer::builder(cluster).partitions(16).optimization(OptimizationLevel::O4).load(&graph);
    let prop = surfer.run(&app).unwrap();
    let mr = surfer.run_mapreduce(&app).unwrap();
    println!(
        "\nMapReduce: {:.2}s / {:.1} MB network;  propagation: {:.2}s / {:.1} MB network",
        mr.report.response_time.as_secs_f64(),
        mr.report.network_bytes as f64 / 1e6,
        prop.report.response_time.as_secs_f64(),
        prop.report.network_bytes as f64 / 1e6,
    );
    println!(
        "propagation speedup: {:.1}x",
        mr.report.response_time.as_secs_f64() / prop.report.response_time.as_secs_f64()
    );

    // Both primitives compute identical ranks.
    let diff = prop
        .output
        .ranks
        .iter()
        .zip(&mr.output.ranks)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |rank difference| between primitives: {diff:.2e}");
}
