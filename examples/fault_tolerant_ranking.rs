//! Fault tolerance in action (the paper's Figure 10 scenario): kill a slave
//! machine mid-PageRank and watch the job manager detect the failure via
//! heartbeat, re-plan the stranded tasks onto replica holders, and finish
//! with bit-identical results.
//!
//! ```text
//! cargo run --release --example fault_tolerant_ranking
//! ```

use surfer::apps::pagerank::PageRankPropagation;
use surfer::cluster::{render_gantt, utilization, Fault, SimTime};
use surfer::core::OptimizationLevel;
use surfer::prelude::*;

fn main() {
    let graph = msn_like(MsnScale::Tiny, 5);
    let cluster = ClusterConfig::paper_regime(Topology::t1(8)).build();
    let surfer = Surfer::builder(cluster)
        .partitions(16)
        .optimization(OptimizationLevel::O4)
        .load(&graph);
    let engine = surfer.propagation();
    let prog = PageRankPropagation { damping: 0.85, n: graph.num_vertices() as u64 };

    // Normal run.
    let mut clean = engine.init_state(&prog);
    let normal = engine.run_iteration(&prog, &mut clean).unwrap();
    println!("normal iteration: {:.2}s", normal.response_time.as_secs_f64());
    println!("{}", render_gantt(&normal, 72));

    // Kill the machine hosting partition 0 at 40% of the normal runtime.
    let victim = surfer.partitioned().machine_of(0);
    let kill_at = normal.response_time.as_secs_f64() * 0.4;
    let mut recovered = engine.init_state(&prog);
    let faulty = engine.run_iteration_with_faults(
        &prog,
        &mut recovered,
        &[Fault { machine: victim, at: SimTime::from_secs_f64(kill_at) }],
    )
    .unwrap();

    println!(
        "killed {victim} at t={kill_at:.2}s -> detected by heartbeat, {} tasks re-planned",
        faulty.tasks_recovered
    );
    println!(
        "with recovery: {:.2}s ({:.0}% overhead), results identical: {}",
        faulty.response_time.as_secs_f64(),
        (faulty.response_time.as_secs_f64() / normal.response_time.as_secs_f64() - 1.0) * 100.0,
        clean == recovered
    );
    println!("{}", render_gantt(&faulty, 72));

    let u = utilization(&faulty);
    println!(
        "dead machine utilization after recovery: {:.0}% (survivors: {:.0}%-{:.0}%)",
        u[victim.index()] * 100.0,
        u.iter().enumerate().filter(|&(m, _)| m != victim.index()).map(|(_, &x)| x * 100.0).fold(f64::INFINITY, f64::min),
        u.iter().enumerate().filter(|&(m, _)| m != victim.index()).map(|(_, &x)| x * 100.0).fold(0.0, f64::max),
    );
}
