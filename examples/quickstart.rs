//! Quickstart: load a social graph onto a simulated cloud cluster,
//! partition it bandwidth-aware, and rank the network with PageRank.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use surfer::prelude::*;

fn main() {
    // 1. A social graph — here the MSN-like synthetic stand-in (~8K users).
    let graph = msn_like(MsnScale::Tiny, 42);
    println!(
        "graph: {} vertices, {} edges ({:.1} MB in adjacency-list format)",
        graph.num_vertices(),
        graph.num_edges(),
        graph.storage_bytes() as f64 / 1e6
    );

    // 2. A simulated cloud: 8 machines in 2 pods — cross-pod bandwidth is
    //    1/32 of intra-pod, as in the paper's T2 topology.
    let cluster = ClusterConfig::paper_regime(Topology::t2(2, 1, 8)).build();

    // 3. Load: Surfer partitions the graph (multilevel bisection) and places
    //    partitions bandwidth-aware (optimization level O4 = full Surfer).
    let surfer = Surfer::builder(cluster)
        .partitions(8)
        .optimization(OptimizationLevel::O4)
        .load(&graph);
    println!(
        "partitioned into {} parts, inner-edge ratio {:.1}%",
        surfer.partitioned().num_partitions(),
        surfer.partitioned().inner_edge_ratio() * 100.0
    );

    // 4. Run 5 PageRank iterations with the propagation primitive.
    let run = surfer.run(&NetworkRanking::new(5)).unwrap();
    println!(
        "ranked {} vertices in {:.2}s simulated time ({} MB over the network)",
        run.output.ranks.len(),
        run.report.response_time.as_secs_f64(),
        run.report.network_bytes / 1_000_000
    );

    // 5. The most influential accounts.
    let mut top: Vec<(usize, f64)> = run.output.ranks.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top 5 accounts by rank:");
    for (v, r) in top.into_iter().take(5) {
        println!("  v{v}: {r:.6}");
    }
}
