//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! a minimal property-testing harness with the same surface the test suite
//! uses: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! [`strategy::Strategy`] with `prop_map`/`prop_flat_map`, integer-range and
//! tuple strategies, [`strategy::Just`], and
//! [`collection`]`::{vec, btree_set}`.
//!
//! Differences from upstream, deliberate for an offline reproduction:
//!
//! * **No shrinking.** A failing case reports its inputs via the panic
//!   message (`prop_assert!` is `assert!`); it is not minimized.
//! * **Deterministic seeding.** Each test's input stream is derived from the
//!   test name, so runs are reproducible without a regression file.
//! * **No persistence.** `*.proptest-regressions` files are ignored.

pub mod strategy {
    //! Input-generation strategies.

    use crate::test_runner::TestRng;

    /// A generator of test inputs.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Derive a dependent strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident.$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
}

pub mod collection {
    //! Strategies producing collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A size bound for collection strategies (inclusive on both ends).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(self, rng: &mut TestRng) -> usize {
            self.lo + (rng.next_u64() % (self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// A `Vec` of `size` elements drawn from `element`, `size` drawn from
    /// the given range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` with a size in the given range (best effort: bails out
    /// when the element domain is too small to reach the minimum).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // Duplicates don't grow the set; cap the attempts so a small
            // element domain cannot loop forever.
            for _ in 0..(n * 10 + 100) {
                if set.len() >= n {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

pub mod test_runner {
    //! The per-test execution loop.

    /// Runner configuration. Named `ProptestConfig` in the prelude, as
    //  upstream does.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// The deterministic input generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is fixed by `name` — typically the test
        /// function's name, so each test has its own reproducible inputs.
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf29ce484222325u64; // FNV-1a
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Property assertion (no shrinking: behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion (no shrinking: behaves like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion (no shrinking: behaves like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn combinators_compose(
            v in (1u32..10).prop_flat_map(|n| collection::vec(0u32..n, 0..20)),
            k in Just(42u64),
        ) {
            prop_assert_eq!(k, 42);
            for x in &v {
                prop_assert!(*x < 10);
            }
        }

        #[test]
        fn sets_are_deduplicated(s in collection::btree_set(0u32..100, 0..10)) {
            prop_assert!(s.len() < 10);
        }
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        let s = 0u64..1_000_000;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
