//! No-op derive macros for the offline `serde` stand-in.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as an
//! annotation (nothing serializes through serde at runtime), so these
//! derives emit no code at all. See the `serde` shim's crate docs.

use proc_macro::TokenStream;

/// Emits nothing: the annotation is accepted, no impl is generated.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Emits nothing: the annotation is accepted, no impl is generated.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
