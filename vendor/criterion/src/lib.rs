//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! a minimal benchmark harness with criterion's API shape: benches compile
//! and run unmodified, timing each closure over a fixed number of samples
//! and printing mean wall-clock per iteration. No statistics, plots, or
//! baselines — the `reproduce` binary owns the persisted perf numbers.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup; accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string(), samples: 10 }
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    samples: u64,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    /// Time one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { iters: self.samples, elapsed: Duration::ZERO };
        f(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
        println!("bench {}/{id}: {:.3} ms/iter ({} iters)", self.name, per_iter * 1e3, b.iters);
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Times the benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with untimed fresh input from `setup` each iteration.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Collect bench functions into one runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("count", |b| b.iter(|| count += 1));
        assert_eq!(count, 3);
        group.finish();
    }

    #[test]
    fn iter_batched_gets_fresh_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(4);
        let mut total = 0u64;
        group.bench_function("batched", |b| {
            b.iter_batched(|| 2u64, |x| total += x, BatchSize::SmallInput)
        });
        assert_eq!(total, 8);
    }
}
