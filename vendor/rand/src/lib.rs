//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! a minimal, dependency-free implementation of exactly the rand 0.8 API
//! subset Surfer uses: `StdRng` + `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}` and `seq::SliceRandom::{shuffle,
//! choose}`. The generator is SplitMix64 — statistically solid for graph
//! generation and deterministic across platforms, which is all the
//! reproduction needs. Streams differ from upstream `StdRng` (ChaCha12);
//! seeds therefore produce different — but still fixed — graphs.

use std::ops::Range;

/// A random number generator: the single entry point all consumers bound on.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T` (`f64` in `[0, 1)`, full range for
    /// integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value in `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly at random without parameters.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[range.start, range.end)`.
    fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                // Modulo bias is negligible for the spans the workspace uses
                // (all far below 2^32).
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

pub mod rngs {
    //! Named generator types.

    use super::{Rng, SeedableRng};

    /// The standard generator: SplitMix64 (Steele, Lea & Flood 2014).
    ///
    /// Unlike upstream's ChaCha12-based `StdRng`, this is a tiny
    /// non-cryptographic generator — deterministic, uniform, and fast,
    /// which is what the synthetic-graph generators and samplers need.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(0x1F123BB5) }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..3);
            assert!(y < 3);
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
