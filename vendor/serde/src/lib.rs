//! Offline stand-in for the `serde` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! this shim. The workspace only *annotates* types with
//! `#[derive(Serialize, Deserialize)]` — nothing serializes through serde at
//! runtime (the partition store writes its own adjacency format). The shim
//! therefore provides the two marker traits and no-op derive macros so the
//! annotations compile; if a future PR needs real serialization, it should
//! extend the shim's traits with actual encode/decode methods.

/// Marker for serializable types (no methods — see crate docs).
pub trait Serialize {}

/// Marker for deserializable types (no methods — see crate docs).
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
