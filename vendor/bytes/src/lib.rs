//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! a minimal implementation of the subset the adjacency codecs and the
//! filesystem partition store use: [`BytesMut`] as a growable write buffer,
//! [`Bytes`] as a frozen read buffer, and the [`Buf`]/[`BufMut`] cursor
//! traits. Backed by a plain `Vec<u8>` — no refcounted slices, which the
//! codecs never rely on.

use std::ops::Deref;

/// A readable byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Read the next byte, advancing the cursor.
    ///
    /// # Panics
    /// Panics when no bytes remain.
    fn get_u8(&mut self) -> u8;

    /// True when at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read a little-endian `u32`, advancing the cursor.
    ///
    /// # Panics
    /// Panics when fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes([self.get_u8(), self.get_u8(), self.get_u8(), self.get_u8()])
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (first, rest) = self.split_first().expect("buffer exhausted");
        *self = rest;
        *first
    }
}

/// A writable byte sink.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, b: u8);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.put_u8(b);
        }
    }

    /// Append a byte slice.
    fn put_slice(&mut self, s: &[u8]) {
        for &b in s {
            self.put_u8(b);
        }
    }
}

/// A growable write buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Reserve room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing was written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Bytes left (matches upstream semantics where reading consumes the
    /// front).
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when fully consumed (or empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.to_vec(), pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.data[self.pos];
        self.pos += 1;
        b
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32_le() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u8(7);
        assert_eq!(buf.len(), 5);
        let bytes = buf.freeze();
        assert_eq!(bytes.len(), 5);
        let mut slice: &[u8] = &bytes;
        assert_eq!(slice.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(slice.get_u8(), 7);
        assert!(!slice.has_remaining());
    }

    #[test]
    fn bytes_cursor_consumes_front() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        assert_eq!(b.get_u8(), 1);
        assert_eq!(b.len(), 4);
        assert_eq!(&b[..], &[2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "buffer exhausted")]
    fn slice_read_past_end_panics() {
        let mut s: &[u8] = &[];
        s.get_u8();
    }
}
