//! # Surfer
//!
//! A Rust reproduction of **"Large Graph Processing in the Cloud"** (Surfer,
//! SIGMOD 2010): a large-graph processing engine with two programming
//! primitives — MapReduce and **propagation** — running over a
//! bandwidth-aware-partitioned graph on a (simulated) cloud cluster.
//!
//! This facade crate re-exports the public API of the workspace crates:
//!
//! * [`graph`] — graph structures, storage and generators.
//! * [`cluster`] — the simulated cloud: topologies, discrete-event engine,
//!   job manager, fault tolerance.
//! * [`partition`] — multilevel and bandwidth-aware graph partitioning.
//! * [`mapreduce`] — the home-grown MapReduce baseline engine.
//! * [`core`] — the propagation engine and the `Surfer` entry point.
//! * [`apps`] — the six paper applications (NR, RS, TC, VDD, RLG, TFL).
//! * [`obs`] — zero-dependency span tracing + metrics for the real
//!   execution path (`reproduce -- profile`).
//! * [`serve`] — multi-tenant job serving: admission control, deadlines,
//!   retries with seeded backoff, fair-share scheduling and a result cache.
//!
//! ## Quickstart
//!
//! ```
//! use surfer::prelude::*;
//!
//! // A small social graph and a 4-machine flat cluster.
//! let graph = msn_like(MsnScale::Tiny, 42);
//! let cluster = ClusterConfig::flat(4).build();
//!
//! // Partition it bandwidth-aware and run 3 PageRank iterations.
//! let surfer = Surfer::builder(cluster)
//!     .partitions(4)
//!     .optimization(OptimizationLevel::O4)
//!     .load(&graph);
//! let run = surfer.run(&NetworkRanking::new(3)).unwrap();
//! assert_eq!(run.output.ranks.len(), graph.num_vertices() as usize);
//! ```

pub use surfer_apps as apps;
pub use surfer_cluster as cluster;
pub use surfer_core as core;
pub use surfer_graph as graph;
pub use surfer_mapreduce as mapreduce;
pub use surfer_obs as obs;
pub use surfer_partition as partition;
pub use surfer_serve as serve;

/// Convenient glob-import surface for examples and applications.
pub mod prelude {
    pub use surfer_apps::{
        degree_dist::VertexDegreeDistribution, pagerank::NetworkRanking,
        recommender::RecommenderSystem, reverse::ReverseLinkGraph, triangle::TriangleCounting,
        two_hop::TwoHopFriends,
    };
    pub use surfer_cluster::{ClusterConfig, SimCluster, Topology};
    pub use surfer_core::{OptimizationLevel, Surfer, SurferBuilder};
    pub use surfer_graph::generators::social::{msn_like, MsnScale};
    pub use surfer_graph::{CsrGraph, GraphBuilder, VertexId};
    pub use surfer_partition::PartitionedGraph;
    pub use surfer_serve::{JobManager, JobSpec, PropagationJob, ServeConfig, TenantId};
}
